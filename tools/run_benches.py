#!/usr/bin/env python
"""Run the key benchmarks and emit a machine-readable ``BENCH_PR10.json``.

The bench trajectory continues from ``BENCH_PR9.json``: one small,
fast, deterministic-in-shape bundle that CI runs on every push and
uploads as an artifact, so regressions in the hot paths show up as a
diffable JSON file instead of anecdotes.  Current probes:

- ``fig4_3_cell`` — wall time of one Fig. 4.3 simulation cell
  (W1/ts), uncached, best of ``--repeats``.
- ``kernel_window_stream`` — the batched thermal kernel vs the scalar
  one on an identical window stream (the PR 2 speedup, tracked).
- ``gang_vs_serial`` — a 32-cell homogeneous no-limit grid (an inlet
  sweep) per-cell serial vs one leader gang lock-stepped through
  ``GridMemSpot``, on the pure-python backend and (when importable)
  the NumPy one.  Per-cell payloads are asserted byte-identical to
  the serial baseline, and the speedups are asserted against floors
  (>= 1.2x pure python, >= 3x NumPy) so a vectorization regression
  fails the bench instead of drifting.
- ``lockstep_gang_vs_serial`` — the same grid shape under DTM-TS
  (thermally sensitive, so no leader shortcut exists): per-cell
  serial vs one lockstep gang driving batched ``decide_all``, the
  steady-state window cache, and flat per-window accounting.
  Byte-identical payloads asserted, floors >= 1.1x pure python and
  >= 2x NumPy.
- ``fleet_vector_vs_fleet_serial`` — a 16-cell DTM-TS sweep over a
  2-worker fleet, per-cell dispatch vs gang-aware dispatch
  (``batch_cells=8``: one whole gang per worker, lock-stepped there),
  value-identical results and a >= 1.2x floor asserted.
- ``campaign_grid_serial`` / ``campaign_grid_fleet2`` — the 8-cell ch4
  grid cold through an in-process serial run vs an
  ``HttpWorkerBackend`` over a 2-worker :class:`LocalFleet` with
  chunked dispatch (one request per worker), measuring the scale-out
  path end to end (worker boot excluded).  Both sides run in cold
  processes, so the comparison is apples to apples.
- ``checkpoint_overhead`` — per-window cost of engine checkpointing at
  its most aggressive setting (a checkpoint written every window).
  Two regression assertions: the optimized observer path (section-
  reuse serializer + raw-``os`` writes) must beat the naive PR-5-era
  re-dump + pathlib path run interleaved on the same filesystem
  (relative, so disk weather cancels), and the CPU-side cost per
  checkpoint (snapshot + serialize + encode, no I/O) must stay under
  an absolute 60 us budget.
- ``resume_vs_restart`` — a 2-worker fleet loses a worker mid-cell;
  wall clock of the grid with time-sliced (resume-from-checkpoint)
  dispatch vs whole-run (restart-from-zero) dispatch.
- ``warm_hit_latency`` — per-hit cost of a warm ``get_or_compute``
  through the flat ``JsonDirStore`` vs a 4-way ``ShardedStore`` (reps
  interleaved; the ring lookup must stay within 5x of the flat read)
  and through the memory-fronted tiered stack.
- ``single_flight_dedup`` — N threads stampede one cold Fig. 4.3 cell
  through a ``SingleFlightStore``; the bench asserts exactly one
  compute ran (the PR 7 acceptance bar) and reports the wall clock
  next to the solo-cell time.
- ``job_queue_throughput`` — submit-to-complete latency through the
  ``repro.jobs`` service: warm single-cell jobs at 1/8/32 queued
  (the per-job queue overhead — persist, schedule, envelope), and one
  cold 8-cell compare job on the serial sliced scheduler vs the
  vector backend's lockstep gang.
- ``tracing_overhead`` — the same Fig. 4.3 cell with ``repro.obs``
  tracing off (the default: one ``is None`` check per window) vs on
  at the default 1-in-32 window sampling, reps interleaved.  The
  traced/untraced ratio is asserted under a generous ceiling so span
  recording can never quietly become a per-window tax.

Usage::

    PYTHONPATH=src python tools/run_benches.py [--output PATH]
        [--repeats N] [--skip-fleet]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.specs import Chapter4Spec  # noqa: E402
from repro.campaign import (  # noqa: E402
    Campaign,
    JsonDirStore,
    MemoryStore,
    NullStore,
    ShardedStore,
    SingleFlightStore,
    TieredStore,
    engine_for_spec,
    run_outcome,
    run_payload,
)
from repro.campaign.spec import runner_for  # noqa: E402
from repro.cluster import HttpWorkerBackend, LocalFleet  # noqa: E402
from repro.core.kernel import BatchedMemSpot, _import_numpy  # noqa: E402
from repro.engine import plan_gangs  # noqa: E402
from repro.core.memspot import MemSpot  # noqa: E402
from repro.engine import (  # noqa: E402
    CheckpointFile,
    CheckpointObserver,
    EngineStateSerializer,
    Observer,
)
from repro.params.thermal_params import AOHS_1_5, ISOLATED_AMBIENT  # noqa: E402

#: The campaign grid both execution paths run (cold, copies=1): all
#: eight Fig. 4.3 schemes, ordered so each worker's half is a
#: memoization-coherent family — the bandwidth-capped schemes share
#: level-1 window-model entries, as do the frequency-scaled ones —
#: which keeps the duplicated per-worker warm-up to a minimum.
GRID_POLICIES = (
    "bw", "acg", "bw+pid", "acg+pid",
    "no-limit", "ts", "cdvfs", "cdvfs+pid",
)

#: Driver for the cold-process serial baseline: same grid, same
#: MemoryStore, fresh interpreter (no warm window-model memo).
_SERIAL_DRIVER = """
import json, sys, time
sys.path.insert(0, {src!r})
from repro.analysis.specs import Chapter4Spec
from repro.campaign import Campaign, MemoryStore
specs = [Chapter4Spec(mix="W1", policy=p, copies=1) for p in {policies!r}]
started = time.perf_counter()
Campaign(specs, store=MemoryStore()).run()
print(json.dumps({{"seconds": time.perf_counter() - started}}))
"""


def _grid_specs() -> list[Chapter4Spec]:
    return [
        Chapter4Spec(mix="W1", policy=policy, copies=1)
        for policy in GRID_POLICIES
    ]


def bench_fig4_3_cell(repeats: int) -> dict:
    spec = Chapter4Spec(mix="W1", policy="ts", copies=1)
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        run_payload(spec, NullStore())
        samples.append(time.perf_counter() - started)
    return {
        "description": "one uncached Fig. 4.3 cell (W1/ts, copies=1)",
        "best_seconds": round(min(samples), 4),
        "samples_seconds": [round(s, 4) for s in samples],
    }


def bench_kernel_window_stream(repeats: int) -> dict:
    rng = random.Random(1234)
    windows = [
        (rng.random() * 2.2e10, rng.random() * 1.1e10, rng.random() * 8.0)
        for _ in range(5_000)
    ]

    def drive(memspot) -> float:
        started = time.perf_counter()
        for read_bps, write_bps, heating in windows:
            memspot.step(read_bps, write_bps, heating, 0.01)
        return time.perf_counter() - started

    scalar = min(
        drive(MemSpot(AOHS_1_5, ISOLATED_AMBIENT)) for _ in range(repeats)
    )
    batched = min(
        drive(BatchedMemSpot(AOHS_1_5, ISOLATED_AMBIENT))
        for _ in range(repeats)
    )
    return {
        "description": "5k-window thermal kernel stream, scalar vs batched",
        "scalar_seconds": round(scalar, 4),
        "batched_seconds": round(batched, 4),
        "speedup": round(scalar / batched, 3),
    }


#: Speedup floors for the gang bench (the PR 6 acceptance bar): losing
#: grid vectorization shows up as a failed bench run, not silent drift.
GANG_MIN_SPEEDUP_PYTHON = 1.2
GANG_MIN_SPEEDUP_NUMPY = 3.0


def bench_gang_vs_serial(repeats: int, cells: int = 32) -> dict:
    """A homogeneous no-limit inlet sweep: per-cell serial vs one gang.

    All cells share the workload axes and the no-limit policy is
    thermally insensitive, so the whole grid forms a single leader
    gang — the best case grid vectorization exists for.  Reps are
    interleaved so machine-load drift hits every variant equally; the
    per-cell payloads must equal the serial baseline's byte for byte.
    """
    specs = [
        Chapter4Spec(
            mix="W1", policy="no-limit", copies=1, inlet_delta_c=0.25 * i
        )
        for i in range(cells)
    ]
    grid = [(spec.key(), spec) for spec in specs]
    encode = runner_for("ch4").encode

    def serial_once() -> tuple[float, dict[str, dict]]:
        started = time.perf_counter()
        payloads = {
            key: encode(engine_for_spec(spec).run_to_completion())
            for key, spec in grid
        }
        return time.perf_counter() - started, payloads

    def gang_once(backend: str) -> tuple[float, dict[str, dict]]:
        # Planning (and therefore engine construction) is part of the
        # timed region, mirroring the serial side's engine_for_spec.
        started = time.perf_counter()
        plan = plan_gangs(grid, batch_cells=len(grid), backend=backend)
        assert not plan.solo and len(plan.gangs) == 1, "expected one gang"
        (planned,) = plan.gangs
        assert planned.gang.mode == "leader", planned.gang.mode
        payloads = {
            key: encode(result)
            for (key, _), result in zip(
                planned.cells, planned.gang.run_to_completion()
            )
        }
        return time.perf_counter() - started, payloads

    backends = ["python"] + (["numpy"] if _import_numpy() is not None else [])
    serial_samples: list[float] = []
    gang_samples: dict[str, list[float]] = {name: [] for name in backends}
    baseline: dict[str, dict] | None = None
    for _ in range(repeats):
        seconds, payloads = serial_once()
        serial_samples.append(seconds)
        if baseline is None:
            baseline = payloads
        assert payloads == baseline, "serial reps must be deterministic"
        for name in backends:
            seconds, payloads = gang_once(name)
            gang_samples[name].append(seconds)
            assert payloads == baseline, (
                f"gang ({name}) payloads differ from the serial baseline"
            )

    best_serial = min(serial_samples)
    result = {
        "description": (
            f"{cells}-cell homogeneous W1/no-limit inlet sweep: per-cell "
            f"serial vs one leader gang (payloads byte-identical)"
        ),
        "cells": cells,
        "serial_seconds": round(best_serial, 4),
        "numpy_available": "numpy" in backends,
    }
    for name in backends:
        best = min(gang_samples[name])
        speedup = best_serial / best
        floor = (
            GANG_MIN_SPEEDUP_NUMPY
            if name == "numpy"
            else GANG_MIN_SPEEDUP_PYTHON
        )
        assert speedup >= floor, (
            f"gang ({name}) speedup {speedup:.2f}x fell below the "
            f"{floor}x floor (serial {best_serial:.3f}s vs gang {best:.3f}s)"
        )
        result[f"gang_{name}_seconds"] = round(best, 4)
        result[f"speedup_{name}"] = round(speedup, 3)
        result[f"min_speedup_{name}"] = floor
    return result


#: Speedup floors for the thermally-sensitive lockstep bench (the
#: PR 10 acceptance bar).  Lower than the leader-gang floors: every
#: cell runs its own policy and window model here, so the win comes
#: from batched decide_all, the steady-state window cache, and flat
#: per-window accounting, not from sharing one leader's work.
LOCKSTEP_MIN_SPEEDUP_PYTHON = 1.1
LOCKSTEP_MIN_SPEEDUP_NUMPY = 2.0


def bench_lockstep_gang_vs_serial(repeats: int, cells: int = 32) -> dict:
    """A thermally-sensitive inlet sweep: per-cell serial vs lockstep.

    Same shape as :func:`bench_gang_vs_serial` but under DTM-TS, whose
    decisions read the temperatures — no leader shortcut exists, so
    the gang must step every cell's policy and scheduler and the
    speedup measures the vectorized lockstep path itself.  Per-cell
    payloads are asserted byte-identical to the serial baseline.
    """
    specs = [
        Chapter4Spec(
            mix="W1", policy="ts", copies=1, inlet_delta_c=0.05 * i
        )
        for i in range(cells)
    ]
    grid = [(spec.key(), spec) for spec in specs]
    encode = runner_for("ch4").encode

    def serial_once() -> tuple[float, dict[str, dict]]:
        started = time.perf_counter()
        payloads = {
            key: encode(engine_for_spec(spec).run_to_completion())
            for key, spec in grid
        }
        return time.perf_counter() - started, payloads

    def gang_once(backend: str) -> tuple[float, dict[str, dict]]:
        started = time.perf_counter()
        plan = plan_gangs(grid, batch_cells=len(grid), backend=backend)
        assert not plan.solo and len(plan.gangs) == 1, "expected one gang"
        (planned,) = plan.gangs
        assert planned.gang.mode == "lockstep", planned.gang.mode
        payloads = {
            key: encode(result)
            for (key, _), result in zip(
                planned.cells, planned.gang.run_to_completion()
            )
        }
        return time.perf_counter() - started, payloads

    backends = ["python"] + (["numpy"] if _import_numpy() is not None else [])
    serial_samples: list[float] = []
    gang_samples: dict[str, list[float]] = {name: [] for name in backends}
    baseline: dict[str, dict] | None = None
    for _ in range(repeats):
        seconds, payloads = serial_once()
        serial_samples.append(seconds)
        if baseline is None:
            baseline = payloads
        assert payloads == baseline, "serial reps must be deterministic"
        for name in backends:
            seconds, payloads = gang_once(name)
            gang_samples[name].append(seconds)
            assert payloads == baseline, (
                f"lockstep gang ({name}) payloads differ from the "
                f"serial baseline"
            )

    best_serial = min(serial_samples)
    result = {
        "description": (
            f"{cells}-cell thermally-sensitive W1/ts inlet sweep: "
            f"per-cell serial vs one lockstep gang (payloads "
            f"byte-identical)"
        ),
        "cells": cells,
        "serial_seconds": round(best_serial, 4),
        "numpy_available": "numpy" in backends,
    }
    for name in backends:
        best = min(gang_samples[name])
        speedup = best_serial / best
        floor = (
            LOCKSTEP_MIN_SPEEDUP_NUMPY
            if name == "numpy"
            else LOCKSTEP_MIN_SPEEDUP_PYTHON
        )
        assert speedup >= floor, (
            f"lockstep gang ({name}) speedup {speedup:.2f}x fell below "
            f"the {floor}x floor (serial {best_serial:.3f}s vs gang "
            f"{best:.3f}s)"
        )
        result[f"gang_{name}_seconds"] = round(best, 4)
        result[f"speedup_{name}"] = round(speedup, 3)
        result[f"min_speedup_{name}"] = floor
    return result


#: Floor for gang-aware fleet dispatch vs per-cell dispatch on the
#: same fleet: shipping whole gangs must beat shipping cells.
FLEET_GANG_MIN_SPEEDUP = 1.2
FLEET_GANG_CELLS = 16
FLEET_GANG_BATCH = 8


def _fleet_sweep_once(
    workers: int, batch_cells: int | None
) -> tuple[float, list]:
    specs = [
        Chapter4Spec(mix="W1", policy="ts", copies=1, inlet_delta_c=0.05 * i)
        for i in range(FLEET_GANG_CELLS)
    ]
    with LocalFleet(workers, env={"REPRO_CACHE": "0"}) as fleet:
        with HttpWorkerBackend(
            fleet.urls, batch_cells=batch_cells, heartbeat_interval_s=5.0
        ) as backend:
            started = time.perf_counter()
            results = Campaign(
                specs, store=MemoryStore(), backend=backend
            ).run()
            elapsed = time.perf_counter() - started
    assert len(results) == len(specs)
    return elapsed, results


def bench_fleet_gang_vs_fleet_serial(repeats: int, workers: int = 2) -> dict:
    """Gang-aware vs per-cell dispatch on the same 2-worker fleet.

    The same thermally-sensitive sweep cold through
    :class:`HttpWorkerBackend` twice per rep (interleaved): once with
    per-cell chunked dispatch, once with ``batch_cells`` gang units —
    each worker receives one whole gang and lock-steps it through one
    grid kernel.  Results must be value-identical; the gang side must
    clear the 1.2x floor.  Worker boot is excluded from both
    timings.
    """
    percell_samples: list[float] = []
    gang_samples: list[float] = []
    baseline: list | None = None
    for _ in range(repeats):
        seconds, results = _fleet_sweep_once(workers, None)
        percell_samples.append(seconds)
        if baseline is None:
            baseline = results
        assert results == baseline, "per-cell fleet reps must agree"
        seconds, results = _fleet_sweep_once(workers, FLEET_GANG_BATCH)
        gang_samples.append(seconds)
        assert results == baseline, (
            "gang-aware fleet results differ from per-cell dispatch"
        )
    best_percell = min(percell_samples)
    best_gang = min(gang_samples)
    speedup = best_percell / best_gang
    assert speedup >= FLEET_GANG_MIN_SPEEDUP, (
        f"gang-aware fleet speedup {speedup:.2f}x fell below the "
        f"{FLEET_GANG_MIN_SPEEDUP}x floor (per-cell {best_percell:.3f}s "
        f"vs gang {best_gang:.3f}s)"
    )
    return {
        "description": (
            f"{FLEET_GANG_CELLS}-cell W1/ts inlet sweep over "
            f"{workers} LocalFleet workers: per-cell dispatch vs "
            f"gang-aware dispatch (batch_cells={FLEET_GANG_BATCH}, "
            f"one gang per worker), reps interleaved, results "
            f"value-identical"
        ),
        "cells": FLEET_GANG_CELLS,
        "workers": workers,
        "batch_cells": FLEET_GANG_BATCH,
        "fleet_percell_seconds": round(best_percell, 4),
        "fleet_gang_seconds": round(best_gang, 4),
        "best_seconds": round(best_gang, 4),
        "speedup": round(speedup, 3),
        "min_speedup": FLEET_GANG_MIN_SPEEDUP,
    }


def _serial_grid_once() -> float:
    driver = _SERIAL_DRIVER.format(
        src=str(REPO_ROOT / "src"), policies=tuple(GRID_POLICIES)
    )
    env = dict(os.environ)
    env["REPRO_CACHE"] = "0"
    proc = subprocess.run(
        [sys.executable, "-c", driver],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(proc.stdout)["seconds"]


def _fleet_grid_once(workers: int, chunk: int) -> float:
    specs = _grid_specs()
    with LocalFleet(workers, env={"REPRO_CACHE": "0"}) as fleet:
        # The grid takes a few seconds; a 5 s heartbeat keeps liveness
        # probing off the timed path without disabling dead-worker
        # detection for longer grids.
        with HttpWorkerBackend(
            fleet.urls, chunk_cells=chunk, heartbeat_interval_s=5.0
        ) as backend:
            started = time.perf_counter()
            results = Campaign(
                specs, store=MemoryStore(), backend=backend
            ).run()
            elapsed = time.perf_counter() - started
    assert len(results) == len(specs)
    return elapsed


def bench_campaign_grids(repeats: int, workers: int = 2) -> tuple[dict, dict]:
    """Serial vs 2-worker fleet, reps interleaved so machine-load
    drift hits both sides equally; best-of-``repeats`` per side."""
    chunk = len(GRID_POLICIES) // workers
    serial_samples: list[float] = []
    fleet_samples: list[float] = []
    for _ in range(repeats):
        serial_samples.append(_serial_grid_once())
        fleet_samples.append(_fleet_grid_once(workers, chunk))
    serial = {
        "description": (
            f"cold ch4 grid, {len(GRID_POLICIES)} cells, serial in a "
            f"fresh process (no warm memo)"
        ),
        "cells": len(GRID_POLICIES),
        "best_seconds": round(min(serial_samples), 4),
        "samples_seconds": [round(s, 4) for s in serial_samples],
    }
    fleet = {
        "description": (
            f"cold ch4 grid, {len(GRID_POLICIES)} cells, "
            f"HttpWorkerBackend over {workers} LocalFleet workers, "
            f"chunked dispatch ({chunk} cells/request), reps "
            f"interleaved with the serial baseline"
        ),
        "cells": len(GRID_POLICIES),
        "workers": workers,
        "chunk_cells": chunk,
        "best_seconds": round(min(fleet_samples), 4),
        "samples_seconds": [round(s, 4) for s in fleet_samples],
        "speedup_vs_serial": round(min(serial_samples) / min(fleet_samples), 3),
    }
    return serial, fleet


class _NaiveCheckpointWriter(Observer):
    """The PR-5-era checkpoint path: full re-dump + pathlib write.

    Kept here as the bench's comparison arm — this is what
    :class:`~repro.engine.observers.CheckpointObserver` did before the
    section-reuse serializer and the raw-``os`` write path, and what it
    must keep beating.
    """

    def __init__(self, path: Path) -> None:
        self.path = path

    def on_window(self, engine) -> None:
        state = engine.checkpoint()
        text = json.dumps(state.to_dict(), sort_keys=True)
        tmp = self.path.with_suffix(
            f"{self.path.suffix}.tmp.{os.getpid()}"
        )
        tmp.write_text(text + "\n")
        os.replace(tmp, self.path)


def bench_checkpoint_overhead(repeats: int) -> dict:
    """Engine checkpointing at every window vs no checkpointing."""
    import tempfile

    spec = Chapter4Spec(mix="W1", policy="ts", copies=1)

    def plain() -> tuple[float, int]:
        engine = engine_for_spec(spec)
        started = time.perf_counter()
        engine.run_to_completion()
        return time.perf_counter() - started, engine.windows

    def checkpointed(optimized: bool) -> tuple[float, int]:
        with tempfile.TemporaryDirectory(prefix="repro-bench-ckpt-") as root:
            path = Path(root) / "cell.checkpoint.json"
            observer: Observer
            if optimized:
                observer = CheckpointObserver(
                    CheckpointFile(path), every_windows=1
                )
            else:
                observer = _NaiveCheckpointWriter(path)
            engine = engine_for_spec(spec, extra_observers=(observer,))
            started = time.perf_counter()
            engine.run_to_completion()
            return time.perf_counter() - started, engine.windows

    plain_samples: list[float] = []
    opt_samples: list[float] = []
    naive_samples: list[float] = []
    windows = 0
    for _ in range(repeats):
        seconds, windows = plain()
        plain_samples.append(seconds)
        seconds, windows = checkpointed(optimized=True)
        opt_samples.append(seconds)
        seconds, windows = checkpointed(optimized=False)
        naive_samples.append(seconds)
    best_plain = min(plain_samples)
    best_opt = min(opt_samples)
    best_naive = min(naive_samples)
    per_window_us = (best_opt - best_plain) / windows * 1e6
    naive_us = (best_naive - best_plain) / windows * 1e6

    # Regression assertion 1 — relative, weather-proof.  The wall-clock
    # per-window number is dominated by two fsync-free syscalls (open +
    # rename) whose cost on a journaled filesystem swings 2-3x with
    # unrelated disk load, so an absolute wall-clock budget mostly
    # tests the weather.  Both write paths run interleaved in this
    # process against the same filesystem, so the comparison is fair:
    # the optimized path (section-reuse serializer + raw-os writes)
    # must not lose to the naive re-dump + pathlib path it replaced.
    assert best_opt <= best_naive * 1.10, (
        f"optimized checkpoint path ({best_opt:.3f}s, "
        f"{per_window_us:.1f} us/window) lost to the naive re-dump path "
        f"({best_naive:.3f}s, {naive_us:.1f} us/window)"
    )

    # Regression assertion 2 — absolute, deterministic.  The CPU-side
    # cost per checkpoint (snapshot build + section-cached serialize +
    # encode, no I/O) does not depend on disk weather, so IT gets the
    # absolute budget: ~20 us/checkpoint measured, 60 allows for slow
    # CI runners while still catching a gross CPU regression.
    engine = engine_for_spec(spec)
    engine.step_windows(500)
    serializer = EngineStateSerializer()
    serializer.serialize(engine.checkpoint())  # warm the section cache
    cpu_rounds = 2000
    started = time.perf_counter()
    for _ in range(cpu_rounds):
        (serializer.serialize(engine.checkpoint()) + "\n").encode()
    cpu_us = (time.perf_counter() - started) / cpu_rounds * 1e6
    cpu_budget_us = 60.0
    assert cpu_us <= cpu_budget_us, (
        f"CPU-side checkpoint cost {cpu_us:.1f} us/checkpoint exceeds "
        f"the {cpu_budget_us} us budget"
    )
    return {
        "description": (
            "W1/ts cell with a checkpoint written every window vs none "
            "(worst-case checkpoint cadence); the optimized observer "
            "path is raced against the naive PR-5-era write path"
        ),
        "windows": windows,
        "plain_seconds": round(best_plain, 4),
        "checkpointed_seconds": round(best_opt, 4),
        "naive_checkpointed_seconds": round(best_naive, 4),
        "overhead_us_per_window": round(per_window_us, 2),
        "naive_overhead_us_per_window": round(naive_us, 2),
        "cpu_us_per_checkpoint": round(cpu_us, 2),
        "cpu_budget_us_per_checkpoint": cpu_budget_us,
    }


def _killed_fleet_grid(window_slice: int | None) -> dict:
    """Run one big cell on a 2-worker fleet, killing a worker mid-cell.

    With ``window_slice`` the survivor resumes from the cell's last
    checkpoint; without it the cell restarts from zero.  The kill fires
    at a fixed wall delay and targets whichever worker actually holds
    the cell at that instant (``fleet_stats`` in-flight view), so both
    variants genuinely lose mid-cell work.
    """
    spec = Chapter4Spec(mix="W1", policy="ts", copies=2)
    # Time the cell solo so the kill lands mid-cell in both variants.
    solo_engine = engine_for_spec(spec)
    solo_started = time.perf_counter()
    solo_engine.run_to_completion()
    solo_seconds = time.perf_counter() - solo_started
    kill_after = max(0.2, solo_seconds * 0.6)

    with LocalFleet(2, env={"REPRO_CACHE": "0"}) as fleet:
        backend = HttpWorkerBackend(
            fleet.urls,
            window_slice=window_slice,
            heartbeat_interval_s=0.25,
            health_timeout_s=1.0,
        )
        with backend:
            campaign = Campaign(
                [spec], store=MemoryStore(), backend=backend
            )
            results: list = []

            def consume() -> None:
                results.extend(r for _, r, _, _ in campaign.iter_run())

            started = time.perf_counter()
            consumer = threading.Thread(target=consume, daemon=True)
            consumer.start()
            time.sleep(kill_after)
            holder = next(
                (
                    index
                    for index, worker in enumerate(backend.fleet_stats())
                    if worker["in_flight_cells"]
                ),
                0,
            )
            fleet.kill(holder)
            consumer.join(timeout=600)
            elapsed = time.perf_counter() - started
            stats = backend.dispatch_stats()
    assert len(results) == 1, "grid did not survive the kill"
    record = next(iter(stats["cells"].values()), {})
    return {
        "solo_cell_seconds": round(solo_seconds, 4),
        "kill_after_seconds": round(kill_after, 4),
        "killed_worker": holder,
        "grid_seconds": round(elapsed, 4),
        "resumed_from_window": record.get("resumed_from", 0),
        "slices": record.get("slices", 1),
    }


def bench_resume_vs_restart() -> dict:
    resumed = _killed_fleet_grid(window_slice=2000)
    restarted = _killed_fleet_grid(window_slice=None)
    return {
        "description": (
            "one W1/ts copies=2 cell on a 2-worker fleet, one worker "
            "SIGKILLed mid-cell: time-sliced resume-from-checkpoint vs "
            "whole-run restart-from-zero"
        ),
        "resume": resumed,
        "restart": restarted,
        "resume_speedup": round(
            restarted["grid_seconds"] / resumed["grid_seconds"], 3
        ),
    }


#: The sharded warm hit adds one ring lookup (a sha256 + bisect) to the
#: flat store's read; losing more than this factor means the read path
#: regressed (e.g. read-repair scanning on the hit path).
WARM_HIT_MAX_SHARDED_RATIO = 5.0


def bench_warm_hit_latency(repeats: int, hits: int = 2000) -> dict:
    """Per-hit cost of warm lookups across the PR 7 store layouts.

    One payload (a realistic ~1 KB record) is served ``hits`` times
    from the flat disk store, a 4-way sharded store, and the
    memory-fronted tiered stack.  Reps interleave the variants so disk
    weather hits all of them equally; the sharded/flat ratio is
    asserted because both sides do the same single file read.
    """
    import tempfile

    payload = {"trace": [round(0.1 * i, 3) for i in range(100)], "ok": 1}
    key = "bench-warmhit-00aa"

    def drive(store) -> float:
        compute = lambda: (payload, {})  # noqa: E731 (never called warm)
        started = time.perf_counter()
        for _ in range(hits):
            _, hit, _ = store.get_or_compute(key, compute)
            assert hit
        return time.perf_counter() - started

    with tempfile.TemporaryDirectory(prefix="repro-bench-warm-") as root:
        flat = JsonDirStore(Path(root) / "flat")
        sharded = ShardedStore.at(Path(root) / "sharded", 4)
        tiered = SingleFlightStore(
            TieredStore([MemoryStore(), JsonDirStore(Path(root) / "tier")]),
            scope="bench-warmhit",
        )
        for store in (flat, sharded, tiered):
            store.put(key, payload)
        samples = {name: [] for name in ("flat", "sharded", "tiered")}
        for _ in range(repeats):
            samples["flat"].append(drive(flat))
            samples["sharded"].append(drive(sharded))
            samples["tiered"].append(drive(tiered))

    best = {name: min(times) for name, times in samples.items()}
    ratio = best["sharded"] / best["flat"]
    assert ratio <= WARM_HIT_MAX_SHARDED_RATIO, (
        f"sharded warm hit {best['sharded'] / hits * 1e6:.1f} us is "
        f"{ratio:.2f}x the flat store's (max "
        f"{WARM_HIT_MAX_SHARDED_RATIO}x) — the hit path regressed"
    )
    return {
        "description": (
            f"{hits} warm get_or_compute hits on one ~1 KB entry: flat "
            f"JsonDirStore vs 4-way ShardedStore vs the memory-fronted "
            f"single-flight stack (reps interleaved)"
        ),
        "hits": hits,
        "flat_us_per_hit": round(best["flat"] / hits * 1e6, 2),
        "sharded_us_per_hit": round(best["sharded"] / hits * 1e6, 2),
        "tiered_us_per_hit": round(best["tiered"] / hits * 1e6, 2),
        "sharded_over_flat": round(ratio, 3),
        "max_sharded_over_flat": WARM_HIT_MAX_SHARDED_RATIO,
    }


class _CountingFlightStore(SingleFlightStore):
    """A single-flight store that counts how many computes actually ran."""

    def __init__(self, inner, *, scope: str) -> None:
        super().__init__(inner, scope=scope)
        self.computes = 0
        self._count_lock = threading.Lock()

    def get_or_compute(self, key, compute, meta=None, validate=None):
        def counted():
            with self._count_lock:
                self.computes += 1
            return compute()

        return super().get_or_compute(key, counted, meta, validate)


def bench_single_flight_dedup(threads: int = 6) -> dict:
    """N threads stampede one cold cell; exactly one compute may run.

    This is the service/vector-backend scenario the
    :class:`SingleFlightStore` exists for: without coalescing the
    stampede runs ``threads`` identical GIL-bound simulations.  The
    bench times the coalesced stampede against the solo cell and
    asserts the dedup (1 compute, everyone served the same payload).
    """
    import tempfile

    spec = Chapter4Spec(mix="W1", policy="ts", copies=1)
    solo_started = time.perf_counter()
    solo_payload = run_payload(spec, NullStore())[0]
    solo_seconds = time.perf_counter() - solo_started

    with tempfile.TemporaryDirectory(prefix="repro-bench-sf-") as root:
        store = _CountingFlightStore(
            TieredStore([MemoryStore(), JsonDirStore(Path(root))]),
            scope="bench-single-flight",
        )
        gate = threading.Barrier(threads)
        outcomes: list = []
        lock = threading.Lock()

        def stampede() -> None:
            gate.wait()
            outcome = run_outcome(spec, store)
            with lock:
                outcomes.append(outcome)

        pool = [threading.Thread(target=stampede) for _ in range(threads)]
        started = time.perf_counter()
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        stampede_seconds = time.perf_counter() - started

    assert store.computes == 1, (
        f"stampede of {threads} ran {store.computes} computes; "
        f"single-flight must coalesce them into 1"
    )
    assert len(outcomes) == threads
    assert all(o.payload == solo_payload for o in outcomes)
    coalesced = sum(
        1 for o in outcomes if o.store_info.get("single_flight") == "coalesced"
    )
    return {
        "description": (
            f"{threads} threads stampede one cold W1/ts cell through a "
            f"SingleFlightStore: exactly 1 compute serves everyone"
        ),
        "threads": threads,
        "computes": store.computes,
        "coalesced_followers": coalesced,
        "solo_cell_seconds": round(solo_seconds, 4),
        "stampede_seconds": round(stampede_seconds, 4),
        "computes_saved": threads - store.computes,
    }


#: Traced/untraced wall-clock ceiling for the tracing bench.  The
#: measured overhead at 1-in-32 window sampling is ~1-2%; 1.15x leaves
#: room for CI-runner noise while still failing if span recording ever
#: lands on the per-window hot path unconditionally.
TRACING_MAX_RATIO = 1.15


def bench_tracing_overhead(repeats: int) -> dict:
    """One Fig. 4.3 cell untraced vs traced (default sampling)."""
    from repro.obs.trace import DEFAULT_SAMPLE_EVERY, TRACER

    spec = Chapter4Spec(mix="W1", policy="ts", copies=1)

    def cell_once() -> float:
        engine = engine_for_spec(spec)
        started = time.perf_counter()
        engine.run_to_completion()
        return time.perf_counter() - started

    untraced: list[float] = []
    traced: list[float] = []
    for _ in range(repeats):
        assert not TRACER.enabled, "bench expects tracing off by default"
        untraced.append(cell_once())
        TRACER.configure(enabled=True, sample_every=DEFAULT_SAMPLE_EVERY)
        try:
            with TRACER.span("bench.cell", policy="ts"):
                traced.append(cell_once())
        finally:
            TRACER.configure(enabled=False)
            TRACER.clear()
    best_untraced, best_traced = min(untraced), min(traced)
    ratio = best_traced / best_untraced
    assert ratio <= TRACING_MAX_RATIO, (
        f"traced cell {best_traced:.3f}s is {ratio:.3f}x the untraced "
        f"{best_untraced:.3f}s (ceiling {TRACING_MAX_RATIO}x) — tracing "
        f"overhead regressed"
    )
    return {
        "description": (
            "one W1/ts cell, tracing disabled (default) vs enabled at "
            f"1-in-{DEFAULT_SAMPLE_EVERY} window sampling, reps "
            "interleaved"
        ),
        "untraced_seconds": round(best_untraced, 4),
        "traced_seconds": round(best_traced, 4),
        "traced_over_untraced": round(ratio, 4),
        "max_ratio": TRACING_MAX_RATIO,
        "sample_every": DEFAULT_SAMPLE_EVERY,
    }


#: The job-bench cold workload: the full Fig. 4.3 comparison — eight
#: same-workload cells that the vector backend runs as one lockstep
#: gang through the grid kernel, while the serial scheduler steps them
#: one by one.
JOB_COLD_REQUEST = {"type": "compare", "mix": "W1", "copies": 1}
JOB_COLD_CELLS = 8


def bench_job_queue_throughput(repeats: int) -> dict:
    """Submit-to-complete latency through the jobs service.

    Two probes of :mod:`repro.jobs`:

    - warm jobs at 1/8/32 queued, on the serial sliced scheduler and
      on the vector backend: every cell is a cache hit, so the
      measured time is pure service overhead — persist, enqueue,
      schedule, envelope, persist again — per job;
    - one cold 8-cell compare job (the Fig. 4.3 scheme sweep) on the
      serial (sliced, preemptible) scheduler vs the vector backend,
      which lock-steps the same-workload cells as one gang.
    """
    import tempfile

    from repro.cluster import VectorBackend
    from repro.jobs import JobsManager, QuotaManager, TenantPolicy

    warm_request = {
        "type": "simulate", "mix": "W1", "policy": "ts", "copies": 1,
    }
    warm_store = MemoryStore()
    run_outcome(
        Chapter4Spec(mix="W1", policy="ts", copies=1), store=warm_store
    )

    def drive(store, request, count, backend=None) -> float:
        with tempfile.TemporaryDirectory(prefix="repro-bench-jobs-") as root:
            manager = JobsManager(
                root, store=store, backend=backend, window_slice=2000,
                # The bench measures the queue, not the admission
                # control: quotas sized so 32 queued jobs all admit.
                quotas=QuotaManager(TenantPolicy(
                    max_active=64, rate_per_s=10_000.0, burst=64,
                )),
            )
            manager.start()
            try:
                started = time.perf_counter()
                job_ids = [
                    manager.submit_body({"request": request})["job"]["id"]
                    for _ in range(count)
                ]
                deadline = time.monotonic() + 600
                for job_id in job_ids:
                    while not manager.queue.get(job_id).terminal:
                        assert time.monotonic() < deadline, "bench job hung"
                        time.sleep(0.0005)
                elapsed = time.perf_counter() - started
                records = [manager.queue.get(job_id) for job_id in job_ids]
                assert all(r.status == "completed" for r in records), (
                    [r.error for r in records]
                )
                return elapsed
            finally:
                manager.stop(drain=False)

    result: dict = {
        "description": (
            "submit-to-complete latency through the jobs service: warm "
            "single-cell jobs at 1/8/32 queued (pure queue overhead), "
            "and one cold 8-cell compare job (Fig. 4.3 sweep), serial "
            "sliced scheduler vs vector-backend lockstep gang"
        ),
    }
    for load in (1, 8, 32):
        serial_best = min(
            drive(warm_store, warm_request, load) for _ in range(repeats)
        )
        vector_best = min(
            drive(warm_store, warm_request, load, backend=VectorBackend())
            for _ in range(repeats)
        )
        result[f"warm_{load}_jobs_serial_seconds"] = round(serial_best, 4)
        result[f"warm_{load}_jobs_vector_seconds"] = round(vector_best, 4)
        result[f"warm_{load}_jobs_ms_per_job"] = round(
            min(serial_best, vector_best) / load * 1e3, 3
        )

    serial_cold = min(
        drive(MemoryStore(), JOB_COLD_REQUEST, 1) for _ in range(repeats)
    )
    vector_cold = min(
        drive(MemoryStore(), JOB_COLD_REQUEST, 1, backend=VectorBackend())
        for _ in range(repeats)
    )
    result["cold_compare_cells"] = JOB_COLD_CELLS
    result["cold_compare_serial_seconds"] = round(serial_cold, 4)
    result["cold_compare_vector_seconds"] = round(vector_cold, 4)
    result["cold_compare_vector_speedup"] = round(
        serial_cold / vector_cold, 3
    )
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_PR10.json"), metavar="PATH"
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--skip-fleet", action="store_true",
        help="skip the fleet benches (e.g. sandboxes without "
        "subprocess networking)",
    )
    args = parser.parse_args(argv)

    benches: dict[str, dict] = {}
    print("bench: fig4_3_cell ...", flush=True)
    benches["fig4_3_cell"] = bench_fig4_3_cell(args.repeats)
    print("bench: kernel_window_stream ...", flush=True)
    benches["kernel_window_stream"] = bench_kernel_window_stream(args.repeats)
    print("bench: gang_vs_serial ...", flush=True)
    benches["gang_vs_serial"] = bench_gang_vs_serial(args.repeats)
    print("bench: lockstep_gang_vs_serial ...", flush=True)
    benches["lockstep_gang_vs_serial"] = bench_lockstep_gang_vs_serial(
        args.repeats
    )
    print("bench: checkpoint_overhead ...", flush=True)
    benches["checkpoint_overhead"] = bench_checkpoint_overhead(args.repeats)
    print("bench: warm_hit_latency ...", flush=True)
    benches["warm_hit_latency"] = bench_warm_hit_latency(args.repeats)
    print("bench: single_flight_dedup ...", flush=True)
    benches["single_flight_dedup"] = bench_single_flight_dedup()
    print("bench: job_queue_throughput ...", flush=True)
    benches["job_queue_throughput"] = bench_job_queue_throughput(args.repeats)
    print("bench: tracing_overhead ...", flush=True)
    benches["tracing_overhead"] = bench_tracing_overhead(args.repeats)
    if args.skip_fleet:
        print("bench: campaign_grid_serial ...", flush=True)
        benches["campaign_grid_serial"] = {
            "description": "cold ch4 grid, serial in a fresh process",
            "cells": len(GRID_POLICIES),
            "best_seconds": round(_serial_grid_once(), 4),
        }
    else:
        print("bench: campaign_grid serial vs fleet2 (interleaved) ...",
              flush=True)
        serial, fleet = bench_campaign_grids(args.repeats)
        benches["campaign_grid_serial"] = serial
        benches["campaign_grid_fleet2"] = fleet
        print("bench: fleet_vector_vs_fleet_serial ...", flush=True)
        benches["fleet_vector_vs_fleet_serial"] = (
            bench_fleet_gang_vs_fleet_serial(args.repeats)
        )
        print("bench: resume_vs_restart ...", flush=True)
        benches["resume_vs_restart"] = bench_resume_vs_restart()

    document = {
        "schema_version": "1.0",
        "generated_by": "tools/run_benches.py",
        "python": platform.python_version(),
        "platform": platform.platform(),
        # Interpret fleet-vs-serial with this in hand: on a one-core
        # box the fleet can only win back its own overhead; the
        # parallel speedup is real on multi-core runners.
        "cpu_count": os.cpu_count(),
        "benches": benches,
    }
    output = Path(args.output)
    output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    for name, bench in benches.items():
        headline = bench.get(
            "best_seconds",
            bench.get(
                "seconds",
                bench.get(
                    "batched_seconds",
                    bench.get(
                        "checkpointed_seconds", bench.get("serial_seconds")
                    ),
                ),
            ),
        )
        extra = (
            f" (speedup {bench['speedup']}x)" if "speedup" in bench else ""
        ) + (
            f" (gang python {bench['speedup_python']}x)"
            if "speedup_python" in bench
            else ""
        ) + (
            f" (gang numpy {bench['speedup_numpy']}x)"
            if "speedup_numpy" in bench
            else ""
        ) + (
            f" (speedup vs serial {bench['speedup_vs_serial']}x)"
            if "speedup_vs_serial" in bench
            else ""
        ) + (
            f" (resume speedup {bench['resume_speedup']}x)"
            if "resume_speedup" in bench
            else ""
        ) + (
            f" ({bench['overhead_us_per_window']} us/window)"
            if "overhead_us_per_window" in bench
            else ""
        )
        if headline is None and "resume" in bench:
            headline = bench["resume"]["grid_seconds"]
        if headline is None and "flat_us_per_hit" in bench:
            print(
                f"  {name}: flat {bench['flat_us_per_hit']} us/hit, "
                f"sharded {bench['sharded_us_per_hit']} us/hit, "
                f"tiered {bench['tiered_us_per_hit']} us/hit"
            )
            continue
        if headline is None and "warm_1_jobs_ms_per_job" in bench:
            print(
                f"  {name}: warm {bench['warm_1_jobs_ms_per_job']}/"
                f"{bench['warm_8_jobs_ms_per_job']}/"
                f"{bench['warm_32_jobs_ms_per_job']} ms/job at 1/8/32, "
                f"cold compare serial "
                f"{bench['cold_compare_serial_seconds']}s vs vector "
                f"{bench['cold_compare_vector_seconds']}s "
                f"({bench['cold_compare_vector_speedup']}x)"
            )
            continue
        if headline is None and "traced_over_untraced" in bench:
            print(
                f"  {name}: untraced {bench['untraced_seconds']}s vs "
                f"traced {bench['traced_seconds']}s "
                f"({bench['traced_over_untraced']}x)"
            )
            continue
        if headline is None and "stampede_seconds" in bench:
            print(
                f"  {name}: {bench['stampede_seconds']}s for "
                f"{bench['threads']} threads "
                f"({bench['computes']} compute, "
                f"{bench['computes_saved']} saved)"
            )
            continue
        print(f"  {name}: {headline}s{extra}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
