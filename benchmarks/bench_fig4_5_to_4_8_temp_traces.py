"""Figs. 4.5–4.8 — AMB temperature traces of TS/BW/ACG/CDVFS on W1.

AOHS_1.5 cooling, first 1000 s, with and without PID.  Expected shapes
(§4.4.2): TS swings between 109 and 110 degC; BW sits near 109.5; the
PID variants pin ~109.8 with no overshoot; plain CDVFS occasionally
touches 110 (overshoot) which PID eliminates.
"""

from _common import copies, emit, prefetch, run_once

from repro.analysis.specs import Chapter4Spec, run_chapter4
from repro.analysis.series import summarize_series
from repro.analysis.tables import format_series, format_table
from repro.campaign import sweep

CASES = (
    ("fig4_5_ts", "ts"),
    ("fig4_6_bw", "bw"),
    ("fig4_6b_bw_pid", "bw+pid"),
    ("fig4_7_acg", "acg"),
    ("fig4_7b_acg_pid", "acg+pid"),
    ("fig4_8_cdvfs", "cdvfs"),
    ("fig4_8b_cdvfs_pid", "cdvfs+pid"),
)


def test_figs4_5_to_4_8_temperature_traces(benchmark):
    def build():
        n = copies()
        prefetch(sweep(
            Chapter4Spec,
            {"policy": [policy for _, policy in CASES]},
            mix="W1", cooling="AOHS_1.5", copies=n, record_trace=True,
        ))
        lines = []
        rows = []
        for name, policy in CASES:
            result = run_chapter4(
                Chapter4Spec(
                    mix="W1", policy=policy, cooling="AOHS_1.5",
                    copies=n, record_trace=True,
                )
            )
            window = result.trace.window(0.0, 1000.0)
            lines.append(format_series(f"{name:18s}", window.amb_c))
            summary = summarize_series(window.amb_c, threshold=110.0)
            rows.append(
                [policy, summary.minimum, summary.mean, summary.maximum,
                 summary.overshoot_fraction]
            )
        table = format_table(
            ["policy", "min(degC)", "mean(degC)", "max(degC)", "overshoot frac"],
            rows,
        )
        return "\n".join(lines) + "\n\n" + table

    emit("fig4_5_to_4_8_temp_traces", run_once(benchmark, build))
