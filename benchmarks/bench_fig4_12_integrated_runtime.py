"""Fig. 4.12 — normalized running time under the integrated thermal model.

The integrated model (Eq. 3.6) lets processor heat raise the memory
ambient.  Expected shape (§4.5.1): TS/BW still worst; ACG good; and the
surprise finding — CDVFS closes on or beats ACG because it cuts the
processor heat that pre-warms the DIMMs.
"""

from _common import bench_mixes, copies, emit, prefetch, run_once

from repro.analysis.specs import Chapter4Spec, run_chapter4
from repro.analysis.normalize import geometric_mean
from repro.analysis.tables import format_table
from repro.campaign import sweep

POLICIES = ("ts", "bw", "acg", "cdvfs")


def _figure(cooling: str) -> str:
    n = copies()
    prefetch(sweep(
        Chapter4Spec,
        {"mix": bench_mixes(), "policy": ("no-limit",) + POLICIES},
        cooling=cooling, ambient="integrated", copies=n,
    ))
    rows = []
    columns: dict[str, list[float]] = {policy: [] for policy in POLICIES}
    for mix in bench_mixes():
        baseline = run_chapter4(
            Chapter4Spec(
                mix=mix, policy="no-limit", cooling=cooling,
                ambient="integrated", copies=n,
            )
        )
        row: list[object] = [mix]
        for policy in POLICIES:
            result = run_chapter4(
                Chapter4Spec(
                    mix=mix, policy=policy, cooling=cooling,
                    ambient="integrated", copies=n,
                )
            )
            normalized = result.runtime_s / baseline.runtime_s
            columns[policy].append(normalized)
            row.append(normalized)
        rows.append(row)
    rows.append(["gmean"] + [geometric_mean(columns[p]) for p in POLICIES])
    return format_table(["mix"] + [p.upper() for p in POLICIES], rows)


def test_fig4_12a_fdhs(benchmark):
    emit("fig4_12a_integrated_fdhs", run_once(benchmark, lambda: _figure("FDHS_1.0")))


def test_fig4_12b_aohs(benchmark):
    emit("fig4_12b_integrated_aohs", run_once(benchmark, lambda: _figure("AOHS_1.5")))
