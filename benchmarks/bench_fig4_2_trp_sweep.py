"""Fig. 4.2 — performance of DTM-TS with varied thermal release point.

(a) FDHS_1.0 sweeps the DRAM TRP (the DRAM binds first there);
(b) AOHS_1.5 sweeps the AMB TRP.  Runtime is normalized to the no-limit
ideal; higher TRPs should lose less performance (§4.4.1).
"""

from _common import bench_mixes, copies, emit, prefetch, run_once

from repro.analysis.specs import Chapter4Spec, run_chapter4
from repro.analysis.tables import format_table
from repro.campaign import sweep

#: TRP sweep values: distance below the TDP (85 DRAM / 110 AMB).
DRAM_TRPS = (81.0, 82.0, 83.0, 84.0, 84.5)
AMB_TRPS = (106.0, 107.0, 108.0, 109.0, 109.5)


def _sweep(cooling: str, trp_field: str, trps: tuple[float, ...]) -> str:
    rows = []
    n = copies()
    prefetch(
        sweep(Chapter4Spec, {"mix": bench_mixes()},
              policy="no-limit", cooling=cooling, copies=n)
        + sweep(Chapter4Spec, {"mix": bench_mixes(), trp_field: trps},
                policy="ts", cooling=cooling, copies=n)
    )
    for mix in bench_mixes():
        baseline = run_chapter4(Chapter4Spec(mix=mix, policy="no-limit", cooling=cooling, copies=n))
        row: list[object] = [mix]
        for trp in trps:
            kwargs = {trp_field: trp}
            result = run_chapter4(
                Chapter4Spec(mix=mix, policy="ts", cooling=cooling, copies=n, **kwargs)
            )
            row.append(result.runtime_s / baseline.runtime_s)
        rows.append(row)
    headers = ["mix"] + [f"TRP={trp}" for trp in trps]
    return format_table(headers, rows)


def test_fig4_2a_fdhs_dram_trp(benchmark):
    text = run_once(
        benchmark, lambda: _sweep("FDHS_1.0", "dram_trp_c", DRAM_TRPS)
    )
    emit("fig4_2a_fdhs_dram_trp", text)


def test_fig4_2b_aohs_amb_trp(benchmark):
    text = run_once(
        benchmark, lambda: _sweep("AOHS_1.5", "amb_trp_c", AMB_TRPS)
    )
    emit("fig4_2b_aohs_amb_trp", text)
