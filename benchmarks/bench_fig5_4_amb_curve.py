"""Fig. 5.4 — AMB temperature curve, first 500 s on the SR1500AL.

Homogeneous workloads (four copies of one program) from idle-stable
temperature; the chipset safety throttle arms at 100 degC.  Expected
shape (§5.4.1): the machine idles near 81 degC; swim/mgrid reach 100
within ~150 s and then fluctuate around it; galgel/apsi/vpr stabilize
below 100.
"""

from _common import emit, run_once

from repro.analysis.tables import format_series, format_table
from repro.testbed.performance import ServerWindowModel
from repro.testbed.platforms import SR1500AL
from repro.testbed.runner import run_homogeneous

PROGRAMS = ("swim", "mgrid", "galgel", "apsi", "vpr")


def test_fig5_4_amb_curves(benchmark):
    def build():
        model = ServerWindowModel(SR1500AL)
        lines = []
        rows = []
        for name in PROGRAMS:
            trace, _ = run_homogeneous(
                SR1500AL, name, duration_s=500.0, window_model=model
            )
            lines.append(format_series(f"{name:8s}", trace.amb_c))
            crossed = next(
                (t for t, a in zip(trace.times_s, trace.amb_c) if a >= 100.0), None
            )
            rows.append(
                [name, trace.amb_c[0], max(trace.amb_c),
                 "never" if crossed is None else f"{crossed:.0f}s"]
            )
        table = format_table(
            ["program", "start(degC)", "max(degC)", "reaches 100degC"], rows
        )
        return "\n".join(lines) + "\n\n" + table

    emit("fig5_4_amb_curves", run_once(benchmark, build))
