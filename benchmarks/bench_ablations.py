"""Ablation benches for the design choices DESIGN.md calls out.

- PID anti-windup on/off: without the integral-enable threshold the
  controller winds up during the long cold approach and overshoots.
- ACG round-robin rotation vs fixed victims: rotation spreads the
  gating penalty over jobs; pinning victims starves the same slots.
- Variable read latency (VRL) on/off in the FBDIMM channel.
- Heat spreader type at matched air velocity (AOHS vs FDHS).
- Hot-DIMM position: bypass-traffic asymmetry along the daisy chain.
"""

from _common import copies, emit, run_once

from repro.analysis.tables import format_table
from repro.core.memspot import MemSpot
from repro.core.simulator import SimulationConfig, TwoLevelSimulator
from repro.core.windowmodel import WindowModel
from repro.dram.address import AddressMapper
from repro.dram.controller import ChannelController
from repro.dram.trafficgen import poisson_trace
from repro.dtm.acg import DTMACG
from repro.dtm.pid_policies import PIDPolicy
from repro.params.dram_timing import FBDIMMChannelParams
from repro.params.thermal_params import AOHS_1_0, FDHS_1_0, ISOLATED_AMBIENT
from repro.thermal.isolated import stable_temperatures
from repro.units import gbps


def test_ablation_pid_antiwindup(benchmark):
    def build():
        model = WindowModel()
        config = SimulationConfig(mix_name="W1", copies=copies())
        rows = []
        for label, enabled in (("anti-windup ON", True), ("anti-windup OFF", False)):
            policy = PIDPolicy("cdvfs", integral_enabled=enabled)
            result = TwoLevelSimulator(config, policy, window_model=model).run()
            rows.append([label, result.runtime_s, result.peak_amb_c])
        return format_table(["variant", "runtime (s)", "peak AMB (degC)"], rows)

    emit("ablation_pid_antiwindup", run_once(benchmark, build))


def test_ablation_acg_rotation(benchmark):
    def build():
        model = WindowModel()
        rows = []
        for label, interval in (("round-robin 100ms", 0.100), ("fixed victims", 1e9)):
            config = SimulationConfig(
                mix_name="W1", copies=copies(), rotation_interval_s=interval
            )
            result = TwoLevelSimulator(config, DTMACG(), window_model=model).run()
            rows.append([label, result.runtime_s, result.traffic_bytes / 1e12])
        return format_table(["variant", "runtime (s)", "traffic (TB)"], rows)

    emit("ablation_acg_rotation", run_once(benchmark, build))


def test_ablation_variable_read_latency(benchmark):
    def build():
        mapper = AddressMapper(channels=1, dimms_per_channel=8, banks_per_dimm=8)
        rows = []
        for label, vrl in (("VRL on", True), ("VRL off", False)):
            controller = ChannelController(
                dimms=8,
                banks_per_dimm=8,
                params=FBDIMMChannelParams(variable_read_latency=vrl),
            )
            trace = poisson_trace(
                count=2000, address_space_bytes=1 << 28,
                mean_interarrival_s=3e-7, seed=11,
            )
            controller.run(trace, mapper.decode)
            rows.append(
                [label,
                 controller.stats.average_latency_s() * 1e9,
                 controller.stats.percentile_latency_s(0.95) * 1e9]
            )
        return format_table(["variant", "mean latency (ns)", "p95 latency (ns)"], rows)

    emit("ablation_vrl", run_once(benchmark, build))


def test_ablation_heat_spreader(benchmark):
    def build():
        # Same power, same 1.0 m/s airflow: the AMB-only spreader lets
        # the AMB run hotter while keeping the DRAM chips cooler.
        rows = []
        for cooling in (AOHS_1_0, FDHS_1_0):
            t = stable_temperatures(45.0, amb_power_w=6.5, dram_power_w=2.5, cooling=cooling)
            rows.append([cooling.name, t.amb_c, t.dram_c, t.amb_c - t.dram_c])
        return format_table(
            ["spreader", "stable AMB (degC)", "stable DRAM (degC)", "gap (degC)"],
            rows,
        )

    emit("ablation_heat_spreader", run_once(benchmark, build))


def test_ablation_hot_dimm_position(benchmark):
    def build():
        spot = MemSpot(FDHS_1_0, ISOLATED_AMBIENT, physical_channels=4, dimms_per_channel=4)
        for _ in range(600):
            spot.step(gbps(14.0), gbps(4.0), 0.0, 1.0)
        rows = []
        for position, model in enumerate(spot.dimm_models):
            temps = model.temperatures
            rows.append([f"DIMM {position}", temps.amb_c, temps.dram_c])
        return format_table(["position", "AMB (degC)", "DRAM (degC)"], rows)

    emit("ablation_hot_dimm", run_once(benchmark, build))
