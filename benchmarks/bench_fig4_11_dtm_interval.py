"""Fig. 4.11 — normalized average running time vs the DTM interval.

Intervals of 1/10/20/100 ms, normalized to 10 ms.  Expected shape
(§4.4.4): the 1 ms interval pays its 2.5% control overhead; 10-100 ms
agree within ~2%.

The 1 ms runs cost 10x the simulation steps, so this bench sweeps a
three-mix subset by default.
"""

from _common import bench_mixes, copies, emit, prefetch, run_once

from repro.analysis.specs import Chapter4Spec, run_chapter4
from repro.analysis.normalize import geometric_mean
from repro.analysis.tables import format_table
from repro.campaign import sweep

INTERVALS_S = (0.001, 0.010, 0.020, 0.100)
POLICIES = ("ts", "bw", "acg", "cdvfs")


def test_fig4_11_dtm_interval(benchmark):
    def build():
        n = copies()
        mixes = bench_mixes()[:3]
        prefetch(sweep(
            Chapter4Spec,
            {"policy": POLICIES, "dtm_interval_s": INTERVALS_S, "mix": mixes},
            cooling="AOHS_1.5", copies=n,
        ))
        rows = []
        for policy in POLICIES:
            normalized_by_interval = []
            for interval in INTERVALS_S:
                ratios = []
                for mix in mixes:
                    result = run_chapter4(
                        Chapter4Spec(
                            mix=mix, policy=policy, cooling="AOHS_1.5",
                            copies=n, dtm_interval_s=interval,
                        )
                    )
                    reference = run_chapter4(
                        Chapter4Spec(
                            mix=mix, policy=policy, cooling="AOHS_1.5",
                            copies=n, dtm_interval_s=0.010,
                        )
                    )
                    ratios.append(result.runtime_s / reference.runtime_s)
                normalized_by_interval.append(geometric_mean(ratios))
            rows.append([policy.upper()] + normalized_by_interval)
        headers = ["policy"] + [f"{int(i * 1e3)}ms" for i in INTERVALS_S]
        return format_table(headers, rows)

    emit("fig4_11_dtm_interval", run_once(benchmark, build))
