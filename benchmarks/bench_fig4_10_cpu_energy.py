"""Fig. 4.10 — normalized processor energy per DTM scheme (vs DTM-TS).

Expected shape (§4.4.3): CDVFS saves most (36-42% vs TS), ACG ~22%;
BW costs ~47-48% *more* because the processor spins at full power while
memory is throttled; the PID variants trade some energy back for speed.
"""

from _common import bench_mixes, copies, emit, prefetch, run_once

from repro.analysis.specs import Chapter4Spec, run_chapter4
from repro.analysis.normalize import geometric_mean
from repro.analysis.tables import format_table
from repro.campaign import sweep

POLICIES = ("bw", "acg", "cdvfs", "bw+pid", "acg+pid", "cdvfs+pid")


def _figure(cooling: str) -> str:
    n = copies()
    prefetch(sweep(
        Chapter4Spec,
        {"mix": bench_mixes(), "policy": ("ts",) + POLICIES},
        cooling=cooling, copies=n,
    ))
    rows = []
    columns: dict[str, list[float]] = {policy: [] for policy in POLICIES}
    for mix in bench_mixes():
        ts = run_chapter4(Chapter4Spec(mix=mix, policy="ts", cooling=cooling, copies=n))
        row: list[object] = [mix]
        for policy in POLICIES:
            result = run_chapter4(
                Chapter4Spec(mix=mix, policy=policy, cooling=cooling, copies=n)
            )
            normalized = result.cpu_energy_j / ts.cpu_energy_j
            columns[policy].append(normalized)
            row.append(normalized)
        rows.append(row)
    rows.append(["gmean"] + [geometric_mean(columns[p]) for p in POLICIES])
    return format_table(["mix"] + [p.upper() for p in POLICIES], rows)


def test_fig4_10a_fdhs(benchmark):
    emit("fig4_10a_cpu_energy_fdhs", run_once(benchmark, lambda: _figure("FDHS_1.0")))


def test_fig4_10b_aohs(benchmark):
    emit("fig4_10b_cpu_energy_aohs", run_once(benchmark, lambda: _figure("AOHS_1.5")))
