"""Fig. 5.8 — normalized L2 cache miss counts (both servers).

Normalized to the no-limit run.  Expected shape (§5.4.3): BW barely
changes misses; ACG (and COMB) cut them 25-30% on average by giving
each program the whole socket L2 while it runs; CDVFS leaves them flat.
"""

from _common import bench_mixes, copies, emit, prefetch, run_once

from repro.analysis.specs import Chapter5Spec, run_chapter5
from repro.analysis.normalize import geometric_mean
from repro.analysis.tables import format_table
from repro.campaign import sweep

POLICIES = ("bw", "acg", "cdvfs", "comb")


def _figure(platform: str) -> str:
    n = copies()
    prefetch(sweep(
        Chapter5Spec,
        {"mix": bench_mixes(), "policy": ("no-limit",) + POLICIES},
        platform=platform, copies=n,
    ))
    rows = []
    columns: dict[str, list[float]] = {policy: [] for policy in POLICIES}
    for mix in bench_mixes():
        baseline = run_chapter5(
            Chapter5Spec(platform=platform, mix=mix, policy="no-limit", copies=n)
        )
        row: list[object] = [mix]
        for policy in POLICIES:
            result = run_chapter5(
                Chapter5Spec(platform=platform, mix=mix, policy=policy, copies=n)
            )
            normalized = result.l2_misses / baseline.l2_misses
            columns[policy].append(normalized)
            row.append(normalized)
        rows.append(row)
    rows.append(["gmean"] + [geometric_mean(columns[p]) for p in POLICIES])
    return format_table(["mix"] + [p.upper() for p in POLICIES], rows)


def test_fig5_8a_pe1950(benchmark):
    emit("fig5_8a_l2_misses_pe1950", run_once(benchmark, lambda: _figure("PE1950")))


def test_fig5_8b_sr1500al(benchmark):
    emit("fig5_8b_l2_misses_sr1500al", run_once(benchmark, lambda: _figure("SR1500AL")))
