"""Fig. 4.4 — normalized total memory traffic per DTM scheme.

Expected shape: TS/BW ~1.0, CDVFS ~0.95, ACG ~0.83-0.84 (the shared-L2
contention relief), with PID adding a point or two back (§4.4.2).
"""

from _common import COOLINGS, bench_mixes, copies, emit, prefetch, run_once

from repro.analysis.specs import Chapter4Spec, run_chapter4
from repro.analysis.normalize import geometric_mean
from repro.analysis.tables import format_table
from repro.campaign import sweep

POLICIES = ("ts", "bw", "acg", "cdvfs", "bw+pid", "acg+pid", "cdvfs+pid")


def _figure(cooling: str) -> str:
    n = copies()
    prefetch(sweep(
        Chapter4Spec,
        {"mix": bench_mixes(), "policy": ("no-limit",) + POLICIES},
        cooling=cooling, copies=n,
    ))
    rows = []
    columns: dict[str, list[float]] = {policy: [] for policy in POLICIES}
    for mix in bench_mixes():
        baseline = run_chapter4(
            Chapter4Spec(mix=mix, policy="no-limit", cooling=cooling, copies=n)
        )
        row: list[object] = [mix]
        for policy in POLICIES:
            result = run_chapter4(
                Chapter4Spec(mix=mix, policy=policy, cooling=cooling, copies=n)
            )
            normalized = result.traffic_bytes / baseline.traffic_bytes
            columns[policy].append(normalized)
            row.append(normalized)
        rows.append(row)
    rows.append(["gmean"] + [geometric_mean(columns[p]) for p in POLICIES])
    return format_table(["mix"] + [p.upper() for p in POLICIES], rows)


def test_fig4_4a_fdhs(benchmark):
    emit("fig4_4a_traffic_fdhs", run_once(benchmark, lambda: _figure("FDHS_1.0")))


def test_fig4_4b_aohs(benchmark):
    emit("fig4_4b_traffic_aohs", run_once(benchmark, lambda: _figure("AOHS_1.5")))
