"""Fig. 4.3 — normalized running time of every DTM scheme.

Seven schemes (TS, BW, ACG, CDVFS, and BW/ACG/CDVFS with PID) on W1–W8
under both cooling configurations, normalized to the no-limit ideal.
Expected shape: TS ~ BW worst, ACG best (avg ~1.5 vs ~1.8), CDVFS in
between, PID improving each (§4.4.2).

``test_fig4_3_kernel_speedup`` additionally proves the batched thermal
kernel beats the per-node scalar path on the same inputs: a window
stream micro-benchmark plus one end-to-end Fig. 4.3 cell per kernel.
"""

import random
import time

from _common import COOLINGS, bench_mixes, copies, emit, prefetch, run_once

from repro.analysis.specs import Chapter4Spec, run_chapter4
from repro.analysis.normalize import geometric_mean
from repro.analysis.tables import format_table
from repro.campaign import sweep
from repro.core.kernel import BatchedMemSpot
from repro.core.memspot import MemSpot
from repro.core.simulator import SimulationConfig, TwoLevelSimulator
from repro.core.windowmodel import WindowModel
from repro.dtm.ts import DTMTS
from repro.params.thermal_params import AOHS_1_5, ISOLATED_AMBIENT

POLICIES = ("ts", "bw", "acg", "cdvfs", "bw+pid", "acg+pid", "cdvfs+pid")


def _figure(cooling: str) -> str:
    n = copies()
    prefetch(sweep(
        Chapter4Spec,
        {"mix": bench_mixes(), "policy": ("no-limit",) + POLICIES},
        cooling=cooling, copies=n,
    ))
    rows = []
    columns: dict[str, list[float]] = {policy: [] for policy in POLICIES}
    for mix in bench_mixes():
        baseline = run_chapter4(
            Chapter4Spec(mix=mix, policy="no-limit", cooling=cooling, copies=n)
        )
        row: list[object] = [mix]
        for policy in POLICIES:
            result = run_chapter4(
                Chapter4Spec(mix=mix, policy=policy, cooling=cooling, copies=n)
            )
            normalized = result.runtime_s / baseline.runtime_s
            columns[policy].append(normalized)
            row.append(normalized)
        rows.append(row)
    rows.append(["gmean"] + [geometric_mean(columns[p]) for p in POLICIES])
    return format_table(["mix"] + [p.upper() for p in POLICIES], rows)


def _drive_memspot(memspot, windows):
    start = time.perf_counter()
    sample = None
    for read_bps, write_bps, heating in windows:
        sample = memspot.step(read_bps, write_bps, heating, 0.01)
    return time.perf_counter() - start, sample


def _end_to_end_s(kernel: str, window_model: WindowModel) -> float:
    config = SimulationConfig(mix_name="W1", copies=1, kernel=kernel,
                              record_trace=False)
    start = time.perf_counter()
    TwoLevelSimulator(config, DTMTS(), window_model=window_model).run()
    return time.perf_counter() - start


def _kernel_speedup() -> str:
    """Batched vs scalar thermal kernel on identical inputs."""
    rng = random.Random(1234)
    windows = [
        (rng.random() * 2.2e10, rng.random() * 1.1e10, rng.random() * 8.0)
        for _ in range(20_000)
    ]
    scalar_s = []
    batched_s = []
    scalar_sample = batched_sample = None
    for _ in range(3):
        elapsed, scalar_sample = _drive_memspot(
            MemSpot(AOHS_1_5, ISOLATED_AMBIENT), windows
        )
        scalar_s.append(elapsed)
        elapsed, batched_sample = _drive_memspot(
            BatchedMemSpot(AOHS_1_5, ISOLATED_AMBIENT), windows
        )
        batched_s.append(elapsed)
    # Not merely close: the batched kernel must be bit-identical.
    assert scalar_sample == batched_sample
    micro_scalar, micro_batched = min(scalar_s), min(batched_s)

    # One full Fig. 4.3 cell per kernel, sharing one prewarmed level-1
    # model so the comparison isolates the thermal hot path.
    window_model = WindowModel()
    _end_to_end_s("scalar", window_model)  # warm the level-1 memo
    e2e_scalar = min(_end_to_end_s("scalar", window_model) for _ in range(3))
    e2e_batched = min(_end_to_end_s("batched", window_model) for _ in range(3))

    assert micro_batched < micro_scalar, (
        f"batched kernel not faster: {micro_batched:.3f}s vs {micro_scalar:.3f}s"
    )
    rows = [
        ["20k-window stream", micro_scalar, micro_batched,
         micro_scalar / micro_batched],
        ["fig4.3 W1/ts cell", e2e_scalar, e2e_batched,
         e2e_scalar / e2e_batched],
    ]
    return format_table(
        ["harness", "scalar(s)", "batched(s)", "speedup"], rows
    )


def test_fig4_3_kernel_speedup(benchmark):
    emit("fig4_3_kernel_speedup", run_once(benchmark, _kernel_speedup))


def test_fig4_3a_fdhs(benchmark):
    emit("fig4_3a_runtime_fdhs", run_once(benchmark, lambda: _figure("FDHS_1.0")))


def test_fig4_3b_aohs(benchmark):
    emit("fig4_3b_runtime_aohs", run_once(benchmark, lambda: _figure("AOHS_1.5")))
