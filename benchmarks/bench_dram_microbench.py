"""Cycle-level FBDIMM microbenchmarks (calibration anchors).

These time the actual cycle-level simulator under pytest-benchmark and
report the measured latency/bandwidth envelope the analytic window model
is calibrated against (§4.3.1 two-level split).
"""

from _common import emit, run_once

from repro.analysis.tables import format_table
from repro.core.calibration import calibrate_envelope
from repro.dram.system import MemorySystem
from repro.dram.trafficgen import poisson_trace, stream_trace


def test_envelope_calibration(benchmark):
    def build():
        report = calibrate_envelope(idle_requests=300, stream_requests=6000)
        rows = [
            ["idle latency (ns)", report.idle_latency_s * 1e9],
            ["peak read bandwidth (GB/s)", report.peak_bandwidth_bytes_per_s / 1e9],
        ]
        return format_table(["measurement", "value"], rows)

    emit("dram_calibration", run_once(benchmark, build))


def test_stream_throughput_speed(benchmark):
    """Simulator speed on a saturating stream (requests simulated/sec)."""

    def run():
        system = MemorySystem()
        completed = system.run(stream_trace(count=2000, interarrival_s=0.0))
        return len(completed)

    count = benchmark(run)
    assert count == 2000


def test_latency_under_load_curve(benchmark):
    def build():
        system_rows = []
        for label, interarrival in (
            ("light (0.5M req/s)", 2e-6),
            ("moderate (20M req/s)", 5e-8),
            ("heavy (100M req/s)", 1e-8),
        ):
            system = MemorySystem()
            trace = poisson_trace(
                count=3000, address_space_bytes=1 << 30,
                mean_interarrival_s=interarrival, seed=5,
            )
            system.run(trace)
            stats = system.total_stats()
            system_rows.append(
                [label,
                 stats.average_latency_s() * 1e9,
                 stats.throughput_gbps()]
            )
        return format_table(["load", "mean latency (ns)", "throughput (GB/s)"], system_rows)

    emit("dram_latency_under_load", run_once(benchmark, build))
