"""Parameter tables: Tables 3.1, 3.2, 3.3, 4.1, 4.2, 4.3, 5.1, 5.2.

These benches print the constant tables exactly as the library carries
them, verifying the transcription against the paper's values.
"""

from _common import emit, run_once

from repro.analysis.tables import format_table
from repro.params.dram_timing import DDR2Timing, SimulatedSystemParams
from repro.params.emergency import PE1950_LEVELS, SIMULATION_LEVELS, SR1500AL_LEVELS
from repro.params.power_params import AMBPowerParams, DRAMPowerParams, SIMULATED_CPU_POWER
from repro.params.thermal_params import COOLING_CONFIGS, INTEGRATED_AMBIENT, ISOLATED_AMBIENT
from repro.units import to_gbps
from repro.workloads.mixes import WORKLOAD_MIXES


def test_table_3_1_amb_power_params(benchmark):
    def build():
        amb = AMBPowerParams()
        dram = DRAMPowerParams()
        rows = [
            ["P_AMB_idle (last DIMM)", amb.idle_last_dimm_w, "W"],
            ["P_AMB_idle (other DIMMs)", amb.idle_other_dimm_w, "W"],
            ["beta", amb.beta_w_per_gbps, "W/(GB/s)"],
            ["gamma", amb.gamma_w_per_gbps, "W/(GB/s)"],
            ["P_DRAM_static", dram.static_w, "W"],
            ["alpha1 (read)", dram.alpha1_w_per_gbps, "W/(GB/s)"],
            ["alpha2 (write)", dram.alpha2_w_per_gbps, "W/(GB/s)"],
        ]
        return format_table(["parameter", "value", "unit"], rows)

    emit("table_3_1", run_once(benchmark, build))


def test_table_3_2_thermal_resistances(benchmark):
    def build():
        rows = []
        for name, cooling in sorted(COOLING_CONFIGS.items()):
            r = cooling.resistances
            rows.append(
                [name, r.psi_amb, r.psi_dram_amb, r.psi_dram, r.psi_amb_dram,
                 cooling.tau_amb_s, cooling.tau_dram_s]
            )
        return format_table(
            ["config", "psi_AMB", "psi_DRAM_AMB", "psi_DRAM", "psi_AMB_DRAM",
             "tau_AMB(s)", "tau_DRAM(s)"],
            rows,
        )

    emit("table_3_2", run_once(benchmark, build))


def test_table_3_3_ambient_params(benchmark):
    def build():
        rows = []
        for label, params in (("isolated", ISOLATED_AMBIENT), ("integrated", INTEGRATED_AMBIENT)):
            for cooling, inlet in sorted(params.inlet_by_cooling.items()):
                rows.append([label, cooling, inlet, params.interaction])
        return format_table(["model", "cooling", "inlet(degC)", "PsiCPU_MEM*xi"], rows)

    emit("table_3_3", run_once(benchmark, build))


def test_table_4_1_simulator_params(benchmark):
    def build():
        s = SimulatedSystemParams()
        t = DDR2Timing()
        rows = [
            ["cores", s.cores], ["issue width", s.issue_width],
            ["pipeline stages", s.pipeline_stages],
            ["L2 (MB)", s.l2_capacity_bytes / 2**20],
            ["L2 ways", s.l2_ways],
            ["logical channels", s.logical_channels],
            ["physical channels", s.physical_channels],
            ["DIMMs/channel", s.dimms_per_channel],
            ["banks/DIMM", s.banks_per_dimm],
            ["transfer rate (MT/s)", t.transfer_rate_mt],
            ["tRCD/tCL/tRP (ns)", f"{t.trcd_ns}/{t.tcl_ns}/{t.trp_ns}"],
            ["tRAS/tRC (ns)", f"{t.tras_ns}/{t.trc_ns}"],
            ["DTM interval (ms)", s.dtm_interval_s * 1e3],
            ["DTM overhead (us)", s.dtm_overhead_s * 1e6],
            ["controller queue", s.channel.controller_queue_entries],
            ["controller overhead (ns)", s.channel.controller_overhead_ns],
        ]
        return format_table(["parameter", "value"], rows)

    emit("table_4_1", run_once(benchmark, build))


def test_tables_4_2_and_5_2_workload_mixes(benchmark):
    def build():
        rows = [
            [name, ", ".join(mix.app_names)]
            for name, mix in sorted(WORKLOAD_MIXES.items())
        ]
        return format_table(["mix", "benchmarks"], rows)

    emit("tables_4_2_5_2", run_once(benchmark, build))


def test_tables_4_3_and_5_1_emergency_levels(benchmark):
    def build():
        sections = []
        for label, levels in (
            ("simulated platform (Table 4.3)", SIMULATION_LEVELS),
            ("PE1950 (Table 5.1)", PE1950_LEVELS),
            ("SR1500AL (Table 5.1)", SR1500AL_LEVELS),
        ):
            rows = []
            for index in range(levels.level_count):
                cap = levels.bw_caps_bytes_per_s[index]
                cap_text = "no limit" if cap is None else (
                    "off" if cap == 0 else f"{to_gbps(cap):.1f} GB/s"
                )
                rows.append(
                    [f"L{index + 1}", cap_text,
                     levels.acg_active_cores[index], levels.cdvfs_levels[index]]
                )
            table = format_table(["level", "BW cap", "ACG cores", "CDVFS level"], rows)
            sections.append(f"-- {label} (AMB TDP {levels.amb_tdp_c} degC) --\n{table}")
        return "\n\n".join(sections)

    emit("tables_4_3_5_1", run_once(benchmark, build))


def test_table_4_4_cpu_power(benchmark):
    def build():
        t = SIMULATED_CPU_POWER
        rows = [["ACG", f"{cores} cores", t.acg_power_w(cores)] for cores in range(5)]
        labels = ["3.2GHz@1.55V", "2.8GHz@1.35V", "1.6GHz@1.15V", "0.8GHz@0.95V", "stopped"]
        rows += [
            ["CDVFS", labels[level], t.cdvfs_power_at_level(level)]
            for level in range(5)
        ]
        rows += [["TS/BW", "running", 260.0], ["TS/BW", "memory off", t.standby_w]]
        return format_table(["scheme", "state", "power (W)"], rows)

    emit("table_4_4", run_once(benchmark, build))
