"""Extension benches for the paper's §6 future-work directions.

- **Cache-aware job scheduling**: the batch refill step picks the
  waiting job minimizing predicted shared-L2 contention instead of
  round-robin.  Under a thermal limit, less traffic = more headroom.
- **DTM-COMB on the simulated platform**: Chapter 5 proposes combining
  gating and DVFS on the servers; here it runs on the Chapter 4
  simulated platform against plain ACG and CDVFS.
"""

from _common import bench_mixes, copies, emit, run_once

from repro.analysis.normalize import geometric_mean
from repro.analysis.tables import format_table
from repro.core.simulator import SimulationConfig, TwoLevelSimulator
from repro.core.windowmodel import WindowModel
from repro.dtm.acg import DTMACG
from repro.dtm.base import NoLimitPolicy
from repro.dtm.cdvfs import DTMCDVFS
from repro.dtm.comb import DTMCOMB
from repro.params.emergency import SIMULATION_LEVELS


def test_ext_cache_aware_scheduling(benchmark):
    def build():
        model = WindowModel()
        n = copies()
        rows = []
        for mix in bench_mixes()[:4]:
            base_cfg = SimulationConfig(mix_name=mix, copies=n)
            aware_cfg = SimulationConfig(
                mix_name=mix, copies=n, cache_aware_scheduling=True
            )
            rr = TwoLevelSimulator(base_cfg, DTMACG(), window_model=model).run()
            aware = TwoLevelSimulator(aware_cfg, DTMACG(), window_model=model).run()
            rows.append(
                [mix,
                 aware.runtime_s / rr.runtime_s,
                 aware.traffic_bytes / rr.traffic_bytes]
            )
        return format_table(
            ["mix", "cache-aware/RR runtime", "cache-aware/RR traffic"], rows
        )

    emit("ext_cache_aware_scheduling", run_once(benchmark, build))


def test_ext_comb_on_simulated_platform(benchmark):
    def build():
        model = WindowModel()
        n = copies()
        policies = (
            ("ACG", lambda: DTMACG(SIMULATION_LEVELS)),
            ("CDVFS", lambda: DTMCDVFS(SIMULATION_LEVELS)),
            ("COMB", lambda: DTMCOMB(SIMULATION_LEVELS, min_active=1)),
        )
        columns = {name: [] for name, _ in policies}
        rows = []
        for mix in bench_mixes()[:4]:
            config = SimulationConfig(mix_name=mix, copies=n)
            baseline = TwoLevelSimulator(
                config, NoLimitPolicy(), window_model=model
            ).run()
            row = [mix]
            for name, make in policies:
                result = TwoLevelSimulator(config, make(), window_model=model).run()
                normalized = result.runtime_s / baseline.runtime_s
                columns[name].append(normalized)
                row.append(normalized)
            rows.append(row)
        rows.append(["gmean"] + [geometric_mean(columns[name]) for name, _ in policies])
        return format_table(["mix", "ACG", "CDVFS", "COMB"], rows)

    emit("ext_comb_simulated", run_once(benchmark, build))
