"""Fig. 4.9 — normalized FBDIMM energy per DTM scheme (vs DTM-TS).

Expected shape: ACG saves ~16% of memory energy (less traffic and less
time), CDVFS ~3-4%, BW slightly less than TS; PID trims a little more
(§4.4.3).
"""

from _common import bench_mixes, copies, emit, prefetch, run_once

from repro.analysis.specs import Chapter4Spec, run_chapter4
from repro.analysis.normalize import geometric_mean
from repro.analysis.tables import format_table
from repro.campaign import sweep

POLICIES = ("bw", "acg", "cdvfs", "bw+pid", "acg+pid", "cdvfs+pid")


def _figure(cooling: str) -> str:
    n = copies()
    prefetch(sweep(
        Chapter4Spec,
        {"mix": bench_mixes(), "policy": ("ts",) + POLICIES},
        cooling=cooling, copies=n,
    ))
    rows = []
    columns: dict[str, list[float]] = {policy: [] for policy in POLICIES}
    for mix in bench_mixes():
        ts = run_chapter4(Chapter4Spec(mix=mix, policy="ts", cooling=cooling, copies=n))
        row: list[object] = [mix]
        for policy in POLICIES:
            result = run_chapter4(
                Chapter4Spec(mix=mix, policy=policy, cooling=cooling, copies=n)
            )
            normalized = result.memory_energy_j / ts.memory_energy_j
            columns[policy].append(normalized)
            row.append(normalized)
        rows.append(row)
    rows.append(["gmean"] + [geometric_mean(columns[p]) for p in POLICIES])
    return format_table(["mix"] + [p.upper() for p in POLICIES], rows)


def test_fig4_9a_fdhs(benchmark):
    emit("fig4_9a_memory_energy_fdhs", run_once(benchmark, lambda: _figure("FDHS_1.0")))


def test_fig4_9b_aohs(benchmark):
    emit("fig4_9b_memory_energy_aohs", run_once(benchmark, lambda: _figure("AOHS_1.5")))
