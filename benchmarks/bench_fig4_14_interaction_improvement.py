"""Fig. 4.14 — ACG/CDVFS improvement over DTM-BW vs interaction degree.

Expected shape (§4.5.2): ACG's improvement stays roughly flat (~9%)
while CDVFS's grows with the interaction degree (8.8% -> 19.6% in the
paper) because cutting processor heat matters more when more of it
reaches the DIMMs.
"""

from _common import bench_mixes, copies, emit, prefetch, run_once

from repro.analysis.specs import Chapter4Spec, run_chapter4
from repro.analysis.normalize import geometric_mean
from repro.analysis.tables import format_table
from repro.campaign import sweep

DEGREES = (1.0, 1.5, 2.0)


def test_fig4_14_interaction_improvement(benchmark):
    def build():
        n = copies()
        mixes = bench_mixes()
        prefetch(sweep(
            Chapter4Spec,
            {"policy": ("bw", "acg", "cdvfs"), "interaction": DEGREES,
             "mix": mixes},
            cooling="FDHS_1.0", ambient="integrated", copies=n,
        ))
        rows = []
        for policy in ("acg", "cdvfs"):
            row: list[object] = [policy.upper()]
            for degree in DEGREES:
                ratios = []
                for mix in mixes:
                    bw = run_chapter4(
                        Chapter4Spec(
                            mix=mix, policy="bw", cooling="FDHS_1.0",
                            ambient="integrated", interaction=degree, copies=n,
                        )
                    )
                    result = run_chapter4(
                        Chapter4Spec(
                            mix=mix, policy=policy, cooling="FDHS_1.0",
                            ambient="integrated", interaction=degree, copies=n,
                        )
                    )
                    ratios.append(result.runtime_s / bw.runtime_s)
                improvement = (1.0 - geometric_mean(ratios)) * 100.0
                row.append(improvement)
            rows.append(row)
        headers = ["policy"] + [f"improvement% @ degree={d}" for d in DEGREES]
        return format_table(headers, rows)

    emit("fig4_14_interaction_improvement", run_once(benchmark, build))
