"""Fig. 5.7 — normalized running time of SPEC CPU2006 mixes on the PE1950.

W11 (milc, leslie3d, soplex, GemsFDTD) and W12 (libquantum, lbm,
omnetpp, wrf).  Expected shape (§5.4.2): the CPU2000 findings carry
over — BW degrades ~20-25%, ACG recovers ~7-13%, CDVFS ~14-15%.
"""

from _common import copies, emit, prefetch, run_once

from repro.analysis.specs import Chapter5Spec, run_chapter5
from repro.analysis.tables import format_table
from repro.campaign import sweep

POLICIES = ("bw", "acg", "cdvfs", "comb")


def test_fig5_7_spec2006_pe1950(benchmark):
    def build():
        n = copies()
        prefetch(sweep(
            Chapter5Spec,
            {"mix": ("W11", "W12"), "policy": ("no-limit",) + POLICIES},
            platform="PE1950", copies=n,
        ))
        rows = []
        for mix in ("W11", "W12"):
            baseline = run_chapter5(
                Chapter5Spec(platform="PE1950", mix=mix, policy="no-limit", copies=n)
            )
            row: list[object] = [mix]
            for policy in POLICIES:
                result = run_chapter5(
                    Chapter5Spec(platform="PE1950", mix=mix, policy=policy, copies=n)
                )
                row.append(result.runtime_s / baseline.runtime_s)
            rows.append(row)
        return format_table(["mix"] + [p.upper() for p in POLICIES], rows)

    emit("fig5_7_spec2006_pe1950", run_once(benchmark, build))
