"""Shared helpers for the figure/table benchmark suite.

Every bench regenerates one table or figure of the paper: it declares
the grid of runs it needs via :func:`repro.campaign.sweep`, prefetches
them through the campaign engine (parallel when ``REPRO_BENCH_JOBS``
is set), then builds the same rows/series the paper reports from the
warm cache and writes them under ``results/`` for EXPERIMENTS.md.

Environment knobs:

- ``REPRO_BENCH_SCALE`` — batch copies per application (default 2; the
  paper uses 50).  Shapes are scale-invariant.
- ``REPRO_BENCH_MIXES`` — comma-separated mix subset (default all 8).
- ``REPRO_BENCH_JOBS`` — campaign worker processes for prefetching
  (default 1 = serial in-process).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Iterable

from repro.analysis.specs import bench_copies
from repro.campaign import Campaign
from repro.errors import ConfigurationError

RESULTS_DIR = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))

#: Chapter 4 cooling configurations (the bold Table 3.2 columns).
COOLINGS = ("FDHS_1.0", "AOHS_1.5")


def bench_mixes() -> list[str]:
    """The workload mixes to sweep (W1..W8 unless narrowed by env)."""
    raw = os.environ.get("REPRO_BENCH_MIXES")
    if raw:
        return [mix.strip() for mix in raw.split(",") if mix.strip()]
    return [f"W{i}" for i in range(1, 9)]


def copies() -> int:
    """Batch copies per application for the bench suite."""
    return bench_copies()


def bench_jobs() -> int:
    """Campaign worker processes, from ``REPRO_BENCH_JOBS`` (default 1)."""
    raw = os.environ.get("REPRO_BENCH_JOBS", "1")
    try:
        jobs = int(raw)
    except ValueError:
        raise ConfigurationError(f"REPRO_BENCH_JOBS must be an integer, got {raw!r}")
    if jobs < 1:
        raise ConfigurationError("REPRO_BENCH_JOBS must be >= 1")
    return jobs


def prefetch(specs: Iterable[Any]) -> list[Any]:
    """Execute a bench's whole run grid through the campaign engine.

    Results land in the shared cache, so the bench's row-building loops
    afterwards are pure cache hits; with ``REPRO_BENCH_JOBS>1`` the grid
    computes in parallel.  Returns results in spec order.
    """
    return Campaign(list(specs), jobs=bench_jobs()).run()


def emit(name: str, text: str) -> str:
    """Print a figure's output and persist it under results/."""
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner)
    try:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    except OSError:
        pass
    return banner


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The figure computations take seconds to minutes; re-running them for
    statistical timing would be pointless, so every bench uses a single
    pedantic round.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
