"""Fig. 4.13 — average normalized runtime vs thermal-interaction degree.

Psi_CPU_MEM * xi in {1.0, 1.5, 2.0} under the integrated model.
Expected shape (§4.5.2): every scheme slows as the interaction grows
(more processor heat reaches the DIMMs).
"""

from _common import bench_mixes, copies, emit, prefetch, run_once

from repro.analysis.specs import Chapter4Spec, run_chapter4
from repro.analysis.normalize import geometric_mean
from repro.analysis.tables import format_table
from repro.campaign import sweep

DEGREES = (1.0, 1.5, 2.0)
POLICIES = ("ts", "bw", "acg", "cdvfs")


def test_fig4_13_interaction_sweep(benchmark):
    def build():
        n = copies()
        mixes = bench_mixes()
        prefetch(sweep(
            Chapter4Spec,
            {"policy": ("no-limit",) + POLICIES, "interaction": DEGREES,
             "mix": mixes},
            cooling="FDHS_1.0", ambient="integrated", copies=n,
        ))
        rows = []
        for policy in POLICIES:
            row: list[object] = [policy.upper()]
            for degree in DEGREES:
                ratios = []
                for mix in mixes:
                    baseline = run_chapter4(
                        Chapter4Spec(
                            mix=mix, policy="no-limit", cooling="FDHS_1.0",
                            ambient="integrated", interaction=degree, copies=n,
                        )
                    )
                    result = run_chapter4(
                        Chapter4Spec(
                            mix=mix, policy=policy, cooling="FDHS_1.0",
                            ambient="integrated", interaction=degree, copies=n,
                        )
                    )
                    ratios.append(result.runtime_s / baseline.runtime_s)
                row.append(geometric_mean(ratios))
            rows.append(row)
        headers = ["policy"] + [f"degree={d}" for d in DEGREES]
        return format_table(headers, rows)

    emit("fig4_13_interaction_sweep", run_once(benchmark, build))
