"""Figs. 5.9–5.11 — inlet temperature, CPU power, CPU+DRAM energy (SR1500AL).

- Fig. 5.9: measured memory inlet temperature per policy.  Expected
  shape: BW and ACG similar; CDVFS/COMB ~1 degC cooler (the voltage
  scaling cuts the heat the airflow picks up from the processors).
- Fig. 5.10: average CPU power normalized to BW.  Expected: ACG ~ BW;
  CDVFS ~15% lower; COMB ~13% lower.
- Fig. 5.11: CPU+DRAM energy normalized to BW.  Expected: ACG saves ~6%
  (time), CDVFS ~22% (power x time), COMB ~16%.
"""

from _common import bench_mixes, copies, emit, prefetch, run_once

from repro.analysis.specs import Chapter5Spec, run_chapter5
from repro.analysis.normalize import arithmetic_mean, geometric_mean
from repro.analysis.tables import format_table
from repro.campaign import sweep

POLICIES = ("bw", "acg", "cdvfs", "comb")


def _prefetch_grid(n: int) -> None:
    prefetch(sweep(
        Chapter5Spec,
        {"mix": bench_mixes(), "policy": POLICIES},
        platform="SR1500AL", copies=n,
    ))


def test_fig5_9_memory_inlet_temperature(benchmark):
    def build():
        n = copies()
        _prefetch_grid(n)
        rows = []
        per_policy: dict[str, list[float]] = {p: [] for p in POLICIES}
        for mix in bench_mixes():
            row: list[object] = [mix]
            for policy in POLICIES:
                result = run_chapter5(
                    Chapter5Spec(platform="SR1500AL", mix=mix, policy=policy, copies=n)
                )
                per_policy[policy].append(result.mean_inlet_c)
                row.append(result.mean_inlet_c)
            rows.append(row)
        rows.append(["mean"] + [arithmetic_mean(per_policy[p]) for p in POLICIES])
        return format_table(
            ["mix"] + [f"{p.upper()} inlet(degC)" for p in POLICIES], rows
        )

    emit("fig5_9_inlet_temperature", run_once(benchmark, build))


def test_fig5_10_cpu_power(benchmark):
    def build():
        n = copies()
        _prefetch_grid(n)
        rows = []
        per_policy: dict[str, list[float]] = {p: [] for p in POLICIES}
        for mix in bench_mixes():
            bw = run_chapter5(
                Chapter5Spec(platform="SR1500AL", mix=mix, policy="bw", copies=n)
            )
            row: list[object] = [mix]
            for policy in POLICIES:
                result = run_chapter5(
                    Chapter5Spec(platform="SR1500AL", mix=mix, policy=policy, copies=n)
                )
                normalized = result.average_cpu_power_w / bw.average_cpu_power_w
                per_policy[policy].append(normalized)
                row.append(normalized)
            rows.append(row)
        rows.append(["gmean"] + [geometric_mean(per_policy[p]) for p in POLICIES])
        return format_table(["mix"] + [p.upper() for p in POLICIES], rows)

    emit("fig5_10_cpu_power", run_once(benchmark, build))


def test_fig5_11_energy(benchmark):
    def build():
        n = copies()
        _prefetch_grid(n)
        rows = []
        per_policy: dict[str, list[float]] = {p: [] for p in POLICIES}
        for mix in bench_mixes():
            bw = run_chapter5(
                Chapter5Spec(platform="SR1500AL", mix=mix, policy="bw", copies=n)
            )
            bw_total = bw.cpu_energy_j + bw.memory_energy_j
            row: list[object] = [mix]
            for policy in POLICIES:
                result = run_chapter5(
                    Chapter5Spec(platform="SR1500AL", mix=mix, policy=policy, copies=n)
                )
                normalized = (result.cpu_energy_j + result.memory_energy_j) / bw_total
                per_policy[policy].append(normalized)
                row.append(normalized)
            rows.append(row)
        rows.append(["gmean"] + [geometric_mean(per_policy[p]) for p in POLICIES])
        return format_table(["mix"] + [p.upper() for p in POLICIES], rows)

    emit("fig5_11_energy", run_once(benchmark, build))
