"""Figs. 5.12–5.15 — Chapter 5 sensitivity analyses.

- Fig. 5.12: SR1500AL at 26 degC room ambient with an artificial 90 degC
  TDP — the policy ranking should match the 36 degC results (it is the
  ambient-to-TDP gap that matters, §5.4.5).
- Fig. 5.13: DTM-ACG vs DTM-BW with the processor pinned at 3.0 vs
  2.0 GHz — ACG's improvement persists at the lower clock.
- Fig. 5.14: PE1950 with AMB TDPs of 88/90/92 degC — higher TDP, less
  loss; policy improvements stay similar.
- Fig. 5.15: DTM-ACG with scheduler time slices 5-100 ms — below ~20 ms
  the L2 thrashes (misses and runtime rise).
"""

from _common import bench_mixes, copies, emit, prefetch, run_once

from repro.analysis.specs import Chapter5Spec, run_chapter5
from repro.analysis.normalize import geometric_mean
from repro.analysis.tables import format_table
from repro.campaign import sweep

POLICIES = ("bw", "acg", "cdvfs", "comb")


def test_fig5_12_room_ambient(benchmark):
    def build():
        n = copies()
        prefetch(sweep(
            Chapter5Spec,
            {"mix": bench_mixes(), "policy": ("no-limit",) + POLICIES},
            platform="SR1500AL", copies=n,
            ambient_override_c=26.0, amb_tdp_c=90.0,
        ))
        rows = []
        per_policy: dict[str, list[float]] = {p: [] for p in POLICIES}
        for mix in bench_mixes():
            baseline = run_chapter5(
                Chapter5Spec(
                    platform="SR1500AL", mix=mix, policy="no-limit", copies=n,
                    ambient_override_c=26.0, amb_tdp_c=90.0,
                )
            )
            row: list[object] = [mix]
            for policy in POLICIES:
                result = run_chapter5(
                    Chapter5Spec(
                        platform="SR1500AL", mix=mix, policy=policy, copies=n,
                        ambient_override_c=26.0, amb_tdp_c=90.0,
                    )
                )
                normalized = result.runtime_s / baseline.runtime_s
                per_policy[policy].append(normalized)
                row.append(normalized)
            rows.append(row)
        rows.append(["gmean"] + [geometric_mean(per_policy[p]) for p in POLICIES])
        return format_table(["mix"] + [p.upper() for p in POLICIES], rows)

    emit("fig5_12_room_ambient", run_once(benchmark, build))


def test_fig5_13_processor_frequency(benchmark):
    def build():
        n = copies()
        prefetch(sweep(
            Chapter5Spec,
            {"base_frequency_level": (0, 3), "policy": ("bw", "acg"),
             "mix": bench_mixes()},
            platform="SR1500AL", copies=n,
        ))
        rows = []
        for level, label in ((0, "3.0GHz"), (3, "2.0GHz")):
            ratios = []
            for mix in bench_mixes():
                bw = run_chapter5(
                    Chapter5Spec(
                        platform="SR1500AL", mix=mix, policy="bw", copies=n,
                        base_frequency_level=level,
                    )
                )
                acg = run_chapter5(
                    Chapter5Spec(
                        platform="SR1500AL", mix=mix, policy="acg", copies=n,
                        base_frequency_level=level,
                    )
                )
                ratios.append(acg.runtime_s / bw.runtime_s)
            improvement = (1.0 - geometric_mean(ratios)) * 100.0
            rows.append([label, geometric_mean(ratios), improvement])
        return format_table(
            ["base clock", "ACG/BW runtime", "ACG improvement %"], rows
        )

    emit("fig5_13_processor_frequency", run_once(benchmark, build))


def test_fig5_14_amb_tdp_sweep(benchmark):
    def build():
        n = copies()
        prefetch(sweep(
            Chapter5Spec,
            {"amb_tdp_c": (88.0, 90.0, 92.0),
             "policy": ("no-limit",) + POLICIES, "mix": bench_mixes()},
            platform="PE1950", copies=n,
        ))
        rows = []
        for tdp in (88.0, 90.0, 92.0):
            row: list[object] = [f"TDP={tdp}"]
            for policy in POLICIES:
                ratios = []
                for mix in bench_mixes():
                    baseline = run_chapter5(
                        Chapter5Spec(
                            platform="PE1950", mix=mix, policy="no-limit",
                            copies=n, amb_tdp_c=tdp,
                        )
                    )
                    result = run_chapter5(
                        Chapter5Spec(
                            platform="PE1950", mix=mix, policy=policy,
                            copies=n, amb_tdp_c=tdp,
                        )
                    )
                    ratios.append(result.runtime_s / baseline.runtime_s)
                row.append(geometric_mean(ratios))
            rows.append(row)
        return format_table(["setting"] + [p.upper() for p in POLICIES], rows)

    emit("fig5_14_amb_tdp_sweep", run_once(benchmark, build))


def test_fig5_15_time_slice_sweep(benchmark):
    def build():
        n = copies()
        slices = (0.005, 0.010, 0.020, 0.050, 0.100)
        prefetch(sweep(
            Chapter5Spec,
            {"time_slice_s": slices, "mix": bench_mixes()},
            platform="PE1950", policy="acg", copies=n,
        ))
        rows = []
        reference: dict[str, tuple[float, float]] = {}
        for mix in bench_mixes():
            result = run_chapter5(
                Chapter5Spec(
                    platform="PE1950", mix=mix, policy="acg", copies=n,
                    time_slice_s=0.100,
                )
            )
            reference[mix] = (result.runtime_s, result.l2_misses)
        for slice_s in slices:
            runtimes = []
            misses = []
            for mix in bench_mixes():
                result = run_chapter5(
                    Chapter5Spec(
                        platform="PE1950", mix=mix, policy="acg", copies=n,
                        time_slice_s=slice_s,
                    )
                )
                runtimes.append(result.runtime_s / reference[mix][0])
                misses.append(result.l2_misses / reference[mix][1])
            rows.append(
                [f"{slice_s * 1e3:.0f}ms", geometric_mean(runtimes), geometric_mean(misses)]
            )
        return format_table(
            ["time slice", "norm runtime", "norm L2 misses"], rows
        )

    emit("fig5_15_time_slice_sweep", run_once(benchmark, build))
