"""Fig. 5.5 — average AMB temperature of homogeneous workloads (PE1950).

No DTM control (the PE1950 sits in a cold room).  Expected shape
(§5.4.1): the memory-intensive group (swim, mgrid, applu, art, mcf,
equake, lucas, fma3d, wupwise, facerec) averages hottest; galgel, gap,
bzip2, apsi sit in a middle band; the quiet programs stay coolest.  The
0.5% hottest samples are discarded per the paper's despiking method.
"""

from _common import emit, run_once

from repro.analysis.tables import format_table
from repro.testbed.performance import ServerWindowModel
from repro.testbed.platforms import PE1950
from repro.testbed.runner import run_homogeneous
from repro.thermal.sensors import despike

PROGRAMS = (
    "wupwise", "swim", "mgrid", "applu", "vpr", "galgel", "art", "mcf",
    "equake", "facerec", "lucas", "fma3d", "gap", "bzip2", "apsi", "gzip",
    "crafty", "mesa", "parser", "perlbmk", "twolf", "vortex", "eon",
    "gcc", "ammp", "sixtrack",
)


def test_fig5_5_homogeneous_average_temps(benchmark):
    def build():
        model = ServerWindowModel(PE1950)
        rows = []
        for name in PROGRAMS:
            trace, _ = run_homogeneous(
                PE1950, name, duration_s=600.0,
                safety_threshold_c=1000.0,  # no throttle: cold-room PE1950
                window_model=model,
            )
            kept = despike(trace.amb_c, 0.005)
            average = sum(kept) / len(kept)
            rows.append([name, average, max(trace.amb_c)])
        rows.sort(key=lambda row: -row[1])
        return format_table(["program", "avg AMB (degC)", "max AMB (degC)"], rows)

    emit("fig5_5_homogeneous_temps", run_once(benchmark, build))
