"""The PR 7 store stack: sharding, single-flight dedup, migrations.

The acceptance-critical properties live here:

- N concurrent identical cold requests perform exactly 1 compute and
  0 torn reads (single-flight coalescing + atomic disk publishes).
- Warm envelopes are byte-identical across ``JsonDirStore``,
  ``ShardedStore``, and a post-``migrate()`` store.
- Adding a shard to the consistent-hash ring remaps ~1/N keys.

``REPRO_STORE_STRESS`` scales the thread-hammer tests (default 1x) so
the CI store-stress leg can turn the same tests up without an edit.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.api import ReproClient, SimulateRequest
from repro.campaign import (
    JsonDirStore,
    MemoryStore,
    ShardedStore,
    SingleFlightStore,
    TieredStore,
    key_for_fields,
    migrate,
    register_rewriter,
    register_runner,
    run_outcome,
    spec_key,
    spec_meta,
)
from repro.campaign.spec import CACHE_VERSION
from repro.campaign.stores import (
    RECORD_FORMAT,
    RECORD_VERSION,
    cache_shards,
    default_disk_store,
    flights_in_progress,
    make_record,
)
from repro.errors import ConfigurationError

#: Thread-count multiplier for the hammer tests (CI stress leg sets 4).
STRESS = max(1, int(os.environ.get("REPRO_STORE_STRESS", "1")))


# ---------------------------------------------------------------------------
# A tiny synthetic runner so store tests don't pay for real simulations.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CubeSpec:
    kind: ClassVar[str] = "test-cube"

    value: int = 2

    def key(self) -> str:
        return spec_key(self)


def _execute_cube(spec: CubeSpec) -> dict:
    return {"value": spec.value, "cube": spec.value**3}


register_runner("test-cube", _execute_cube, encode=dict, decode=dict)


def _scope(request) -> str:
    # A per-test flight scope keeps these tests out of the "default"
    # scope shared by every default_store() stack in the process.
    return f"test:{request.node.name}"


# ---------------------------------------------------------------------------
# Tmp naming + concurrent same-key writers (satellite: thread-unsafe tmp)
# ---------------------------------------------------------------------------


def test_tmp_names_are_unique_across_threads(tmp_path):
    store = JsonDirStore(tmp_path)
    target = store._path("test-cube-abc")
    names, lock = [], threading.Lock()

    def grab() -> None:
        mine = [store._tmp_path(target).name for _ in range(50)]
        with lock:
            names.extend(mine)

    threads = [threading.Thread(target=grab) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(names) == len(set(names))
    pid = os.getpid()
    assert all(f".tmp.{pid}." in name for name in names)


def test_concurrent_thread_writers_same_key_no_torn_reads(tmp_path):
    store = JsonDirStore(tmp_path)
    key = CubeSpec(17).key()  # a real hex-suffixed key, as stats scans
    writers = 4 * STRESS
    rounds = 25
    stop = threading.Event()
    torn: list[object] = []

    def write(seed: int) -> None:
        for i in range(rounds):
            store.put(key, {"seed": seed, "round": i, "fill": "x" * 256})

    def read() -> None:
        while not stop.is_set():
            payload = store.get(key)
            if payload is None:
                continue
            if set(payload) != {"seed", "round", "fill"}:
                torn.append(payload)

    readers = [threading.Thread(target=read) for _ in range(2)]
    for t in readers:
        t.start()
    threads = [threading.Thread(target=write, args=(n,)) for n in range(writers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stop.set()
    for t in readers:
        t.join()

    assert torn == []
    # Exactly one survivor, intact, from some writer's final round.
    final = store.get(key)
    assert final is not None and final["round"] == rounds - 1
    assert store.stats()["entries"] == 1
    # No tmp debris left behind by the losing writers.
    assert store.stats()["tmp_files"] == 0


# ---------------------------------------------------------------------------
# Single-flight coalescing (acceptance: N cold requests -> 1 compute)
# ---------------------------------------------------------------------------


def test_single_flight_n_cold_requests_one_compute(tmp_path, request):
    store = SingleFlightStore(JsonDirStore(tmp_path), scope=_scope(request))
    key = CubeSpec(3).key()
    computes, lock = [], threading.Lock()
    gate = threading.Barrier(6 * STRESS)
    results: list[tuple[dict, bool, dict]] = []

    def compute() -> tuple[dict, dict]:
        with lock:
            computes.append(threading.get_ident())
        time.sleep(0.05)  # hold the flight open so followers pile up
        return {"cube": 27}, {"compute_seconds": 0.05}

    def ask() -> None:
        gate.wait()
        outcome = store.get_or_compute(key, compute)
        with lock:
            results.append(outcome)

    threads = [threading.Thread(target=ask) for _ in range(6 * STRESS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert len(computes) == 1  # exactly one compute across the stampede
    assert all(payload == {"cube": 27} for payload, _, _ in results)
    misses = [info for _, hit, info in results if not hit]
    hits = [info for _, hit, info in results if hit]
    assert len(misses) == 1
    assert all(info.get("single_flight") == "coalesced" for info in hits)
    assert flights_in_progress(_scope(request)) == 0
    # The leader's publish reached the disk layer for everyone after.
    assert store.get(key) == {"cube": 27}


def test_single_flight_leader_failure_followers_recover(request):
    store = SingleFlightStore(MemoryStore(), scope=_scope(request))
    key = "test-cube-doomed"
    assert store.try_lead(key)  # this thread is the (doomed) leader
    computes, lock = [], threading.Lock()
    started = threading.Barrier(4)

    def compute() -> tuple[dict, dict]:
        with lock:
            computes.append(threading.get_ident())
        return {"ok": True}, {}

    def follow() -> None:
        started.wait()
        payload, hit, _ = store.get_or_compute(key, compute)
        assert payload == {"ok": True}
        assert not hit  # recovered by computing, not by coalescing

    threads = [threading.Thread(target=follow) for _ in range(3)]
    for t in threads:
        t.start()
    started.wait()
    time.sleep(0.05)  # let the followers park on the flight
    store.settle(key, None)  # leader dies empty-handed
    for t in threads:
        t.join()

    assert len(computes) == 3  # every follower recovered independently
    assert flights_in_progress(_scope(request)) == 0
    store.settle(key, None)  # idempotent on a settled key


def test_single_flight_owner_reenters_without_deadlock(request):
    store = SingleFlightStore(MemoryStore(), scope=_scope(request))
    key = "test-cube-nested"
    assert store.try_lead(key)
    assert store.try_lead(key)  # re-claiming our own flight is fine
    # A nested get_or_compute under our own flight computes directly
    # instead of waiting on ourselves.
    payload, hit, _ = store.get_or_compute(key, lambda: ({"n": 1}, {}))
    assert payload == {"n": 1} and not hit
    store.settle(key, payload)
    assert flights_in_progress(_scope(request)) == 0


def test_follow_covers_every_flight_state(request):
    store = SingleFlightStore(MemoryStore(), scope=_scope(request))
    key = "test-cube-00f1"
    # No flight in progress: follow degrades to a plain inner read.
    assert store.follow(key) is None
    store.put(key, {"cube": 1})
    assert store.follow(key) == {"cube": 1}
    # An open flight that outlives the timeout: the caller gets None
    # and should fall back to computing itself.
    other = "test-cube-00f2"
    assert store.try_lead(other)
    waited: list = []
    follower = threading.Thread(
        target=lambda: waited.append(store.follow(other, timeout=0.01))
    )
    follower.start()
    follower.join()
    assert waited == [None]
    # A settled flight hands its payload to followers; publish to the
    # inner store first so a follower arriving after the settle (the
    # no-flight path) reads the same payload instead of racing.
    store.put(other, {"cube": 8})
    done: list = []
    follower = threading.Thread(
        target=lambda: done.append(store.follow(other, timeout=5.0))
    )
    follower.start()
    time.sleep(0.02)  # usually parks the follower on the flight
    store.settle(other, {"cube": 8})
    follower.join()
    assert done == [{"cube": 8}]
    assert flights_in_progress(_scope(request)) == 0


def test_run_outcome_reports_flight_provenance(tmp_path, request):
    store = SingleFlightStore(JsonDirStore(tmp_path), scope=_scope(request))
    cold = run_outcome(CubeSpec(5), store)
    assert not cold.hit and cold.payload["cube"] == 125
    warm = run_outcome(CubeSpec(5), store)
    assert warm.hit and warm.store_info == {}


# ---------------------------------------------------------------------------
# Consistent-hash ring (tentpole: adding a shard remaps ~1/N keys)
# ---------------------------------------------------------------------------


def test_ring_remaps_about_one_in_n_keys(tmp_path):
    four = ShardedStore.at(tmp_path, 4)
    five = ShardedStore.at(tmp_path, 5)
    keys = [f"test-cube-{i:05d}" for i in range(2000)]
    moved = sum(
        four.shard_for(k).root.name != five.shard_for(k).root.name
        for k in keys
    )
    # Ideal is 1/5 = 0.20; the 64-replica ring lands near it.
    assert 0.10 < moved / len(keys) < 0.35


def test_sharded_routing_is_stable_and_balanced(tmp_path):
    store = ShardedStore.at(tmp_path, 3)
    keys = [f"test-cube-{i:04d}" for i in range(900)]
    by_shard: dict[str, int] = {}
    for k in keys:
        name = store.shard_for(k).root.name
        by_shard[name] = by_shard.get(name, 0) + 1
        assert store.shard_for(k).root.name == name  # deterministic
    assert set(by_shard) == {"00", "01", "02"}
    assert min(by_shard.values()) > 900 // 3 // 3  # no starved shard


def test_sharded_read_repair_after_ring_change(tmp_path):
    four = ShardedStore.at(tmp_path, 4)
    five = ShardedStore.at(tmp_path, 5)
    # Find a seeded key the new ring routes elsewhere; repair on read.
    keys = [f"test-cube-{i:05d}" for i in range(64)]
    for key in keys:
        four.put(key, {"k": key})
    displaced = [
        k for k in keys
        if four.shard_for(k).root.name != five.shard_for(k).root.name
    ]
    assert displaced  # with 65 keys and 1/5 expected movement
    key = displaced[0]
    assert five.get(key) is not None  # served despite wrong shard...
    assert five.shard_for(key).get(key) is not None  # ...and repaired


def test_rebalance_moves_records_verbatim(tmp_path):
    spec = CubeSpec(9)
    four = ShardedStore.at(tmp_path, 4)
    for i in range(60):
        four.put(f"test-cube-r{i:03d}", {"i": i})
    four.put(spec.key(), {"cube": 729}, meta=spec_meta(spec))
    five = ShardedStore.at(tmp_path, 5)
    plan = five.rebalance(dry_run=True)
    assert plan["scanned"] == 61 and plan["moved"] > 0
    done = five.rebalance()
    assert done["moved"] == plan["moved"]
    assert five.rebalance()["moved"] == 0  # converged
    # Every record still reads, with its metadata intact.
    record = five.read_record(spec.key())
    assert record["cache_version"] == CACHE_VERSION
    assert record["spec"] == {"value": 9}
    assert five.get(spec.key()) == {"cube": 729}
    assert five.stats()["entries"] == 61


def test_sharded_store_rejects_bad_configs(tmp_path):
    with pytest.raises(ConfigurationError):
        ShardedStore([])
    with pytest.raises(ConfigurationError):
        ShardedStore.at(tmp_path, 0)
    with pytest.raises(ConfigurationError):
        ShardedStore.at(tmp_path, 2, replicas=0)
    a = JsonDirStore(tmp_path / "x" / "same")
    b = JsonDirStore(tmp_path / "y" / "same")
    with pytest.raises(ConfigurationError):
        ShardedStore([a, b])  # ring positions collide on the name
    with pytest.raises(ValueError):
        ShardedStore.at(tmp_path, 2).prune(max_entries=-1)


def test_sharded_remove_and_prune_without_quota(tmp_path):
    store = ShardedStore.at(tmp_path, 2)
    store.put("test-cube-00cc", {"x": 1})
    assert store.remove("test-cube-00cc")
    assert not store.remove("test-cube-00cc")  # already gone
    assert store.get("test-cube-00cc") is None
    store.put("test-cube-00dd", {"x": 2})
    assert store.prune() == 0  # tmp sweep only; no entry quota
    assert store.prune(max_entries=5) == 0  # under quota: no eviction
    assert store.get("test-cube-00dd") == {"x": 2}


# ---------------------------------------------------------------------------
# Disk-layer bug sweep (satellites: legacy masking, double counting,
# stale tmp orphans)
# ---------------------------------------------------------------------------


def test_non_dict_sharded_file_does_not_mask_legacy_entry(tmp_path):
    store = JsonDirStore(tmp_path)
    key = "test-cube-mask"
    sharded = store._path(key)
    sharded.parent.mkdir(parents=True)
    sharded.write_text(json.dumps(["not", "a", "payload"]))
    store._legacy_path(key).write_text(json.dumps({"cube": 8}))
    assert store.get(key) == {"cube": 8}


def test_stats_counts_dual_layout_entries_once(tmp_path):
    store = JsonDirStore(tmp_path)
    key = "test-cube-00aa"
    store.put(key, {"cube": 1})  # sharded layout
    store._legacy_path(key).write_text(json.dumps({"cube": 1}))  # legacy
    stats = store.stats()
    assert stats["entries"] == 1
    # The sharded (record-wrapped) copy wins the census.
    assert stats["versions"] == {CACHE_VERSION: 1}


def test_prune_sweeps_stale_tmp_files_only(tmp_path):
    store = JsonDirStore(tmp_path)
    store.put("test-cube-0bb0", {"cube": 1})
    old_flat = tmp_path / "a.json.tmp.1.2.3"
    old_flat.write_text("{")
    shard_dir = next(p for p in tmp_path.iterdir() if p.is_dir())
    old_sharded = shard_dir / "b.json.tmp.4.5.6"
    old_sharded.write_text("{")
    young = tmp_path / "c.json.tmp.7.8.9"
    young.write_text("{")
    stale = time.time() - 7200
    os.utime(old_flat, (stale, stale))
    os.utime(old_sharded, (stale, stale))

    assert store.stats()["tmp_files"] == 3
    assert store.prune() == 2  # default grace spares the young writer
    after = store.stats()
    assert after["tmp_files"] == 1 and after["entries"] == 1
    assert store.prune(tmp_grace_s=0.0) == 1  # zero grace sweeps it too
    assert store.stats()["tmp_files"] == 0
    assert store.get("test-cube-0bb0") == {"cube": 1}


def test_sharded_prune_evicts_globally_oldest(tmp_path):
    store = ShardedStore.at(tmp_path, 3)
    for i in range(9):
        key = f"test-cube-{i:04d}"
        store.put(key, {"i": i})
        path = store.shard_for(key)._path(key)
        os.utime(path, (1000.0 + i, 1000.0 + i))
    removed = store.prune(max_entries=4)
    assert removed == 5
    kept = {key for key, _ in store.iter_records()}
    assert kept == {f"test-cube-{i:04d}" for i in range(5, 9)}


# ---------------------------------------------------------------------------
# Migration (acceptance: byte-identical envelopes after re-keying)
# ---------------------------------------------------------------------------

#: ch4 fields that CACHE_VERSION v2 added; a true v1 record lacks them.
_CH4_V2_FIELDS = (
    "inlet_delta_c", "channels", "dimms_per_channel",
    "duty_cycle", "duty_period_s", "bandwidth_scale",
)


def _downgrade_to_v1(store: JsonDirStore, key: str) -> str:
    """Rewrite ``key``'s record as the v1 entry it would have been."""
    record = store.read_record(key)
    v1_fields = {
        k: v for k, v in record["spec"].items() if k not in _CH4_V2_FIELDS
    }
    v1_key = key_for_fields("ch4", v1_fields, cache_version="v1")
    store.write_document(v1_key, {
        "format": RECORD_FORMAT,
        "record": RECORD_VERSION,
        "cache_version": "v1",
        "kind": "ch4",
        "spec": v1_fields,
        "payload": record["payload"],
    })
    store.remove(key)
    return v1_key


def test_migrate_rekeys_v1_entries_to_current(tmp_path):
    request = SimulateRequest(mix="W1", policy="ts", copies=1)
    spec = request.spec()
    store = JsonDirStore(tmp_path)
    client = ReproClient(store)
    client.simulate(request)  # cold compute
    warm_before = client.simulate(request).to_json()

    v1_key = _downgrade_to_v1(store, spec.key())
    assert v1_key != spec.key()
    assert store.get(spec.key()) is None  # orphaned without migration

    plan = migrate(store, dry_run=True)
    assert plan.migrated == 1 and plan.by_version == {"v1": 1}
    assert store.get(spec.key()) is None  # dry run wrote nothing

    report = migrate(store)
    assert (report.migrated, report.failed, report.unmigratable) == (1, 0, 0)
    assert store.get(v1_key) is None  # old key removed
    record = store.read_record(spec.key())
    assert record["cache_version"] == CACHE_VERSION

    # The acceptance bar: the warm envelope after migration is
    # byte-identical to the warm envelope before.
    warm_after = ReproClient(store).simulate(request)
    assert warm_after.provenance.cache == "hit"
    assert warm_after.to_json() == warm_before

    assert migrate(store).current == 1  # idempotent: nothing left to do


def test_migrate_reports_unrecorded_unmigratable_failed(tmp_path):
    store = JsonDirStore(tmp_path)
    # Bare pre-record file: no metadata to migrate from.
    store.write_document("test-cube-0ba0", {"cube": 1})
    # Versioned record of a kind with no registered chain.
    store.write_document("test-mystery-0a1", make_record(
        {"p": 1}, {"cache_version": "v1", "kind": "test-mystery",
                    "spec": {"x": 1}}, key="test-mystery-0a1"))

    def _boom(fields: dict, payload: dict) -> tuple[dict, dict]:
        raise ValueError("rewriter bug")

    register_rewriter("test-broken", "v1", CACHE_VERSION, _boom)
    store.write_document("test-broken-0b2", make_record(
        {"p": 2}, {"cache_version": "v1", "kind": "test-broken",
                    "spec": {"y": 2}}, key="test-broken-0b2"))

    report = migrate(store)
    assert report.scanned == 3
    assert report.unrecorded == 1
    assert report.unmigratable == 1
    assert report.failed == 1
    assert report.migrated == 0
    # Every problem entry is left untouched and still readable.
    assert store.get("test-cube-0ba0") == {"cube": 1}
    assert store.get("test-mystery-0a1") == {"p": 1}
    assert store.get("test-broken-0b2") == {"p": 2}


def test_migrate_sharded_store_and_report_dict(tmp_path):
    # Migration drives the store through its raw-record protocol
    # (iter_records / write_document / remove), which a ShardedStore
    # implements ring-aware: the re-keyed entry must land on the NEW
    # key's ring shard.
    store = ShardedStore.at(tmp_path, 3)
    spec = CubeSpec(11)
    v1_fields = {"value": 11}
    v1_key = key_for_fields("test-cube", v1_fields, cache_version="v1")
    store.write_document(v1_key, {
        "format": RECORD_FORMAT,
        "record": RECORD_VERSION,
        "cache_version": "v1",
        "kind": "test-cube",
        "spec": v1_fields,
        "payload": {"cube": 1331},
    })
    register_rewriter("test-cube", "v1", CACHE_VERSION, lambda f, p: (f, p))

    report = migrate(store)
    assert report.migrated == 1
    assert store.get(v1_key) is None
    assert store.get(spec.key()) == {"cube": 1331}
    assert store.shard_for(spec.key()).get(spec.key()) is not None
    document = report.to_dict()
    assert document["migrated"] == 1 and document["by_version"] == {"v1": 1}
    assert document["target"] == CACHE_VERSION and not document["dry_run"]


def test_migrate_skips_record_with_unusable_fields(tmp_path):
    store = JsonDirStore(tmp_path)
    store.write_document("test-cube-00ee", {
        "format": RECORD_FORMAT,
        "record": RECORD_VERSION,
        "cache_version": "v1",
        "kind": "test-cube",
        "spec": None,  # no key fields: cannot be re-keyed
        "payload": {"cube": 1},
    })
    report = migrate(store)
    assert report.unmigratable == 1 and report.migrated == 0
    assert store.get("test-cube-00ee") == {"cube": 1}


def test_register_rewriter_rejects_self_map():
    with pytest.raises(ConfigurationError):
        register_rewriter("test-self", "v1", "v1", lambda f, p: (f, p))


# ---------------------------------------------------------------------------
# Envelope byte-identity across store layouts (acceptance)
# ---------------------------------------------------------------------------


def test_warm_envelopes_byte_identical_flat_vs_sharded(tmp_path):
    request = SimulateRequest(mix="W1", policy="ts", copies=1)
    flat = JsonDirStore(tmp_path / "flat")
    sharded = ShardedStore.at(tmp_path / "sharded", 3)

    cold_flat = ReproClient(flat).simulate(request)
    cold_sharded = ReproClient(sharded).simulate(request)
    # Cold runs differ exactly by shard provenance (a 1.1 field,
    # omitted entirely on unsharded stores)...
    assert cold_flat.provenance.shard is None
    assert cold_sharded.provenance.shard is not None
    assert "shard" not in cold_flat.to_dict()["provenance"]

    # ...while warm envelopes are byte-for-byte interchangeable.
    warm_flat = ReproClient(flat).simulate(request)
    warm_sharded = ReproClient(sharded).simulate(request)
    assert warm_flat.provenance.cache == "hit"
    assert warm_sharded.provenance.cache == "hit"
    assert warm_flat.to_json() == warm_sharded.to_json()
    # And both stores hold byte-identical payloads for the key.
    key = request.spec().key()
    assert flat.get(key) == sharded.get(key)


# ---------------------------------------------------------------------------
# Environment wiring
# ---------------------------------------------------------------------------


def test_default_disk_store_follows_shard_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_SHARDS", raising=False)
    assert isinstance(default_disk_store(), JsonDirStore)

    monkeypatch.setenv("REPRO_CACHE_SHARDS", "3")
    store = default_disk_store()
    assert isinstance(store, ShardedStore)
    assert cache_shards() == 3
    # Shards live in their own namespace under the cache dir.
    assert all(
        s.root.parent == tmp_path / "shards" for s in store.shards
    )

    monkeypatch.setenv("REPRO_CACHE_SHARDS", "0")
    assert isinstance(default_disk_store(), JsonDirStore)
    monkeypatch.setenv("REPRO_CACHE_SHARDS", "-1")
    with pytest.raises(ConfigurationError):
        default_disk_store()
    monkeypatch.setenv("REPRO_CACHE_SHARDS", "many")
    with pytest.raises(ConfigurationError):
        cache_shards()

    monkeypatch.setenv("REPRO_CACHE_SHARDS", "3")
    monkeypatch.setenv("REPRO_CACHE", "0")
    assert default_disk_store() is None


def test_single_flight_wraps_default_stack(tmp_path, monkeypatch):
    from repro.campaign.stores import default_store

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_SHARDS", raising=False)
    stack = default_store()
    assert isinstance(stack, SingleFlightStore)
    assert isinstance(stack.inner, TieredStore)
    monkeypatch.setenv("REPRO_CACHE", "0")
    memory_only = default_store()
    assert isinstance(memory_only, SingleFlightStore)
    assert isinstance(memory_only.inner, MemoryStore)
