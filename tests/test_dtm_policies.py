"""Table-driven DTM policies: TS, BW, ACG, CDVFS, COMB."""

import pytest

from repro.dtm.acg import DTMACG
from repro.dtm.base import ControlDecision, NoLimitPolicy, ThermalReading
from repro.dtm.bw import DTMBW
from repro.dtm.cdvfs import DTMCDVFS
from repro.dtm.comb import DTMCOMB
from repro.dtm.levels import LevelTracker
from repro.dtm.ts import DTMTS
from repro.errors import ConfigurationError
from repro.params.emergency import PE1950_LEVELS, SIMULATION_LEVELS
from repro.units import gbps

COOL = ThermalReading(amb_c=100.0, dram_c=70.0)
WARM = ThermalReading(amb_c=108.5, dram_c=80.0)
HOT = ThermalReading(amb_c=110.0, dram_c=80.0)
RELEASED = ThermalReading(amb_c=108.9, dram_c=80.0)
FULLY_COOL = ThermalReading(amb_c=109.0, dram_c=80.0)


def test_no_limit_never_throttles():
    policy = NoLimitPolicy()
    decision = policy.decide(ThermalReading(200.0, 200.0), 0.01)
    assert decision.memory_on
    assert decision.bandwidth_cap_bytes_per_s is None
    assert decision.active_cores == 4


def test_ts_stays_on_below_tdp():
    policy = DTMTS()
    assert policy.decide(WARM, 0.01).memory_on


def test_ts_shuts_down_at_tdp():
    policy = DTMTS()
    assert not policy.decide(HOT, 0.01).memory_on


def test_ts_hysteresis_until_trp():
    policy = DTMTS()
    policy.decide(HOT, 0.01)
    # 109.5 is between TRP (109.0) and TDP: still off.
    assert not policy.decide(ThermalReading(109.5, 80.0), 0.01).memory_on
    # At/below TRP: back on.
    assert policy.decide(FULLY_COOL, 0.01).memory_on


def test_ts_dram_limit_also_triggers():
    policy = DTMTS()
    assert not policy.decide(ThermalReading(100.0, 85.0), 0.01).memory_on


def test_ts_custom_trp():
    policy = DTMTS(amb_trp_c=105.0)
    policy.decide(HOT, 0.01)
    assert not policy.decide(ThermalReading(106.0, 80.0), 0.01).memory_on
    assert policy.decide(ThermalReading(105.0, 80.0), 0.01).memory_on


def test_ts_rejects_trp_at_tdp():
    with pytest.raises(ConfigurationError):
        DTMTS(amb_trp_c=110.0)


def test_bw_ladder_follows_levels():
    policy = DTMBW()
    assert policy.decide(COOL, 0.01).bandwidth_cap_bytes_per_s is None
    assert policy.decide(WARM, 0.01).bandwidth_cap_bytes_per_s == pytest.approx(gbps(19.2))
    assert policy.decide(
        ThermalReading(109.2, 80.0), 0.01
    ).bandwidth_cap_bytes_per_s == pytest.approx(gbps(12.8))
    assert policy.decide(
        ThermalReading(109.7, 80.0), 0.01
    ).bandwidth_cap_bytes_per_s == pytest.approx(gbps(6.4))


def test_bw_top_level_shuts_down_with_latch():
    policy = DTMBW()
    decision = policy.decide(HOT, 0.01)
    assert not decision.memory_on
    # Still latched until the TRP.
    assert not policy.decide(ThermalReading(109.4, 80.0), 0.01).memory_on
    assert policy.decide(FULLY_COOL, 0.01).memory_on


def test_bw_never_gates_cores():
    policy = DTMBW()
    for reading in (COOL, WARM, HOT):
        assert policy.decide(reading, 0.01).active_cores == 4


def test_acg_ladder_follows_levels():
    policy = DTMACG()
    assert policy.decide(COOL, 0.01).active_cores == 4
    assert policy.decide(WARM, 0.01).active_cores == 3
    assert policy.decide(ThermalReading(109.2, 80.0), 0.01).active_cores == 2
    assert policy.decide(ThermalReading(109.7, 80.0), 0.01).active_cores == 1


def test_acg_full_shutdown_at_top():
    policy = DTMACG()
    decision = policy.decide(HOT, 0.01)
    assert decision.active_cores == 0
    assert not decision.memory_on


def test_acg_min_active_for_servers():
    policy = DTMACG(PE1950_LEVELS, min_active=2)
    # PE1950 ladder bottoms out at 2 cores anyway; check the clamp.
    decision = policy.decide(ThermalReading(85.0, 0.0), 1.0)
    assert decision.active_cores == 2


def test_acg_rotation_advances_with_time():
    policy = DTMACG(rotation_interval_s=0.1)
    before = policy.rotation
    for _ in range(11):
        policy.decide(WARM, 0.01)
    assert policy.rotation == before + 1


def test_cdvfs_ladder_follows_levels():
    policy = DTMCDVFS()
    assert policy.decide(COOL, 0.01).dvfs_level == 0
    assert policy.decide(WARM, 0.01).dvfs_level == 1
    assert policy.decide(ThermalReading(109.2, 80.0), 0.01).dvfs_level == 2
    assert policy.decide(ThermalReading(109.7, 80.0), 0.01).dvfs_level == 3


def test_cdvfs_stops_at_top_level():
    policy = DTMCDVFS()
    decision = policy.decide(HOT, 0.01)
    assert decision.dvfs_level == 4
    assert not decision.memory_on
    assert decision.active_cores == 0


def test_cdvfs_keeps_all_cores_otherwise():
    policy = DTMCDVFS()
    assert policy.decide(WARM, 0.01).active_cores == 4


def test_comb_walks_both_ladders():
    policy = DTMCOMB(PE1950_LEVELS, min_active=2)
    cool = policy.decide(ThermalReading(70.0, 0.0), 1.0)
    assert (cool.active_cores, cool.dvfs_level) == (4, 0)
    warm = policy.decide(ThermalReading(77.0, 0.0), 1.0)
    assert (warm.active_cores, warm.dvfs_level) == (3, 1)
    hot = policy.decide(ThermalReading(85.0, 0.0), 1.0)
    assert (hot.active_cores, hot.dvfs_level) == (2, 3)


def test_level_tracker_latch_behaviour():
    tracker = LevelTracker(SIMULATION_LEVELS)
    assert tracker.level(ThermalReading(110.5, 80.0)) == 4
    assert tracker.latched
    # Between TRP and TDP: still the top level.
    assert tracker.level(ThermalReading(109.3, 80.0)) == 4
    # At the TRP: releases and re-evaluates.
    assert tracker.level(ThermalReading(108.5, 80.0)) == 1
    assert not tracker.latched


def test_policies_report_emergency_level():
    policy = DTMBW()
    assert policy.decide(WARM, 0.01).emergency_level == 1
    assert policy.decide(HOT, 0.01).emergency_level == 4


def test_reset_restores_initial_state():
    for policy in (DTMTS(), DTMBW(), DTMACG(), DTMCDVFS(), DTMCOMB()):
        policy.decide(ThermalReading(150.0, 150.0), 0.01)
        policy.reset()
        decision = policy.decide(COOL if policy.name != "DTM-COMB" else ThermalReading(70.0, 0.0), 0.01)
        assert decision.memory_on


def test_decision_validation():
    with pytest.raises(ConfigurationError):
        ControlDecision(bandwidth_cap_bytes_per_s=-1.0)
    with pytest.raises(ConfigurationError):
        ControlDecision(active_cores=-1)
