"""Command-line interface."""

import pytest

from repro.cli import main


def test_simulate_command(capsys):
    code = main(["simulate", "--mix", "W1", "--policy", "ts", "--copies", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "DTM-TS" in out
    assert "peak AMB" in out


def test_compare_command(capsys):
    code = main(["compare", "--mix", "W1", "--copies", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "No-limit" in out
    assert "DTM-ACG" in out


def test_server_command(capsys):
    code = main(["server", "--platform", "PE1950", "--mix", "W1",
                 "--policy", "bw", "--copies", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "PE1950" in out
    assert "inlet" in out


def test_homogeneous_command(capsys):
    code = main(["homogeneous", "--platform", "SR1500AL", "--app", "swim",
                 "--duration", "60"])
    assert code == 0
    out = capsys.readouterr().out
    assert "swim" in out
    assert "AMB" in out


def test_simulate_comb_policy(capsys):
    code = main(["simulate", "--mix", "W1", "--policy", "comb", "--copies", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "DTM-COMB" in out


def test_unknown_policy_rejected():
    with pytest.raises(SystemExit):
        main(["simulate", "--policy", "warp"])


def test_command_required():
    with pytest.raises(SystemExit):
        main([])


def test_campaign_command(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    export = tmp_path / "out" / "campaign.csv"
    code = main([
        "campaign", "--mixes", "W1", "--policies", "ts,acg",
        "--copies", "1", "--jobs", "1", "--export", str(export),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "campaign ch4: 2 runs" in out
    assert "runtime(s)" in out
    csv = export.read_text()
    assert csv.startswith("cooling,mix,policy,")
    assert len(csv.strip().splitlines()) == 3  # header + 2 runs


def test_campaign_parallel_output_is_deterministic(capsys, tmp_path, monkeypatch):
    from repro.campaign import GLOBAL_MEMORY

    GLOBAL_MEMORY.clear()
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c1"))
    args = ["campaign", "--grid", "ch5", "--mixes", "W1",
            "--policies", "bw,comb", "--copies", "1"]
    assert main(args + ["--jobs", "2"]) == 0
    parallel_out = capsys.readouterr().out
    # Fresh caches so the serial run really recomputes.
    GLOBAL_MEMORY.clear()
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c2"))
    assert main(args + ["--jobs", "1"]) == 0
    serial_out = capsys.readouterr().out
    assert parallel_out == serial_out


def _one_clean_error_line(err: str) -> bool:
    """A single-line diagnostic, not a traceback."""
    return (
        "Traceback" not in err
        and err.startswith("error: ")
        and err.strip().count("\n") == 0
    )


def test_campaign_bad_inputs_fail_cleanly(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["campaign", "--mixes", "W1", "--policies", "warp"]) == 2
    assert "unknown ch4 policies" in capsys.readouterr().err
    assert main(["campaign", "--mixes", "", "--policies", "ts"]) == 2
    assert "zero runs" in capsys.readouterr().err
    assert main(["campaign", "--mixes", "W1", "--jobs", "0"]) == 2
    assert "jobs must be >= 1" in capsys.readouterr().err
    assert main(["campaign", "--grid", "ch5", "--coolings", "FDHS_1.0"]) == 2
    assert "does not apply" in capsys.readouterr().err
    assert main(["campaign", "--grid", "ch4", "--platforms", "PE1950"]) == 2
    assert "does not apply" in capsys.readouterr().err


def test_campaign_unknown_mix_fails_cleanly(capsys, tmp_path, monkeypatch):
    """A bad grid key deep in the workload layer still prints one line."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["campaign", "--mixes", "W99", "--policies", "ts",
                 "--copies", "1"]) == 2
    err = capsys.readouterr().err
    assert "unknown workload mix 'W99'" in err
    assert _one_clean_error_line(err)


def test_campaign_scenarios_flag_conflicts(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["campaign", "--grid", "ch4", "--scenarios", "idle-burst"]) == 2
    err = capsys.readouterr().err
    assert "--scenarios does not apply to the ch4 grid" in err
    assert _one_clean_error_line(err)
    assert main(["campaign", "--grid", "scenarios",
                 "--coolings", "FDHS_1.0"]) == 2
    err = capsys.readouterr().err
    assert "--coolings does not apply to the scenarios grid" in err
    assert _one_clean_error_line(err)


def test_campaign_unknown_scenario_fails_cleanly(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["campaign", "--grid", "scenarios", "--scenarios", "warp"]) == 2
    err = capsys.readouterr().err
    assert "unknown scenario 'warp'" in err
    assert _one_clean_error_line(err)


def test_scenarios_list_command(capsys):
    assert main(["scenarios", "list"]) == 0
    out = capsys.readouterr().out
    assert "hot-ambient" in out
    assert "server-low-tdp" in out
    assert main(["scenarios", "list", "--kind", "ch5"]) == 0
    out = capsys.readouterr().out
    assert "server-hot-inlet" in out
    assert "hot-ambient" not in out
    assert main(["scenarios", "list", "--tag", "nosuchtag"]) == 1
    assert "no scenarios match" in capsys.readouterr().err


def test_scenarios_run_command(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    export = tmp_path / "scenarios.csv"
    assert main(["scenarios", "run", "cold-aisle", "--copies", "1",
                 "--export", str(export)]) == 0
    out = capsys.readouterr().out
    assert "scenarios: 1 runs" in out
    assert "cold-aisle" in out
    assert export.read_text().startswith("scenario,kind,mix,policy,")


def test_scenarios_run_unknown_fails_cleanly(capsys):
    assert main(["scenarios", "run", "warp"]) == 2
    err = capsys.readouterr().err
    assert "unknown scenario 'warp'" in err
    assert _one_clean_error_line(err)


def test_scenarios_action_required():
    with pytest.raises(SystemExit):
        main(["scenarios"])


def _json_out(capsys) -> dict:
    import json

    return json.loads(capsys.readouterr().out)


def test_simulate_json_envelope(capsys):
    from repro.api import ResultEnvelope

    assert main(["simulate", "--mix", "W1", "--policy", "ts",
                 "--copies", "1", "--json"]) == 0
    envelope = ResultEnvelope.from_dict(_json_out(capsys))
    assert envelope.kind == "ch4"
    assert envelope.metrics["policy"] == "DTM-TS"
    assert envelope.request["type"] == "simulate"
    assert envelope.provenance.cache in ("hit", "miss")


def test_server_json_envelope(capsys):
    assert main(["server", "--platform", "PE1950", "--mix", "W1",
                 "--policy", "bw", "--copies", "1", "--json"]) == 0
    document = _json_out(capsys)
    assert document["kind"] == "ch5"
    assert document["metrics"]["platform"] == "PE1950"


def test_compare_json_document(capsys):
    assert main(["compare", "--mix", "W1", "--copies", "1", "--json"]) == 0
    document = _json_out(capsys)
    assert document["schema_version"]
    assert document["results"][0]["metrics"]["policy"] == "No-limit"
    assert len(document["results"]) == 8


def test_homogeneous_json(capsys):
    assert main(["homogeneous", "--platform", "SR1500AL", "--app", "swim",
                 "--duration", "60", "--json"]) == 0
    document = _json_out(capsys)
    assert document["kind"] == "homogeneous"
    assert document["metrics"]["samples"] > 0
    assert document["metrics"]["max_amb_c"] > document["metrics"]["start_amb_c"]


def test_campaign_json_document(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    assert main(["campaign", "--mixes", "W1", "--policies", "ts,acg",
                 "--copies", "1", "--json"]) == 0
    document = _json_out(capsys)
    assert len(document["results"]) == 2
    assert [r["metrics"]["policy"] for r in document["results"]] == [
        "DTM-TS", "DTM-ACG",
    ]
    assert all(r["request"]["type"] == "cell" for r in document["results"])


def test_scenarios_list_json(capsys):
    assert main(["scenarios", "list", "--json"]) == 0
    document = _json_out(capsys)
    assert {"name", "kind", "tags"} <= set(document["scenarios"][0])
    assert main(["scenarios", "list", "--kind", "ch5", "--json"]) == 0
    document = _json_out(capsys)
    assert all(d["kind"] == "ch5" for d in document["scenarios"])


def test_scenarios_run_json(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    assert main(["scenarios", "run", "cold-aisle", "--copies", "1",
                 "--json"]) == 0
    document = _json_out(capsys)
    assert document["results"][0]["scenario"] == "cold-aisle"


def test_campaign_json_with_export_writes_csv(capsys, tmp_path, monkeypatch):
    """--export still works under --json; stdout stays pure JSON."""
    import json

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    export = tmp_path / "campaign.csv"
    assert main(["campaign", "--mixes", "W1", "--policies", "ts",
                 "--copies", "1", "--json", "--export", str(export)]) == 0
    captured = capsys.readouterr()
    document = json.loads(captured.out)  # no trailing export note
    assert len(document["results"]) == 1
    assert "exported" in captured.err
    assert export.read_text().startswith("cooling,mix,policy,")


def test_simulate_with_checkpoint_dir_matches_plain_run(capsys, tmp_path, monkeypatch):
    """--checkpoint-dir produces the same envelope a plain run does and
    leaves no checkpoint files once the run completes."""
    import json

    from repro.campaign import GLOBAL_MEMORY

    GLOBAL_MEMORY.clear()  # the suite-shared memo would turn the cold run into a hit
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    ckpt_dir = tmp_path / "ckpt"
    assert main(["simulate", "--mix", "W1", "--policy", "ts", "--copies", "1",
                 "--checkpoint-dir", str(ckpt_dir),
                 "--checkpoint-every", "500", "--json"]) == 0
    checkpointed = json.loads(capsys.readouterr().out)
    assert checkpointed["provenance"]["cache"] == "miss"
    assert not list(ckpt_dir.glob("*.checkpoint.json*"))

    # A plain warm run over the same store returns identical metrics.
    assert main(["simulate", "--mix", "W1", "--policy", "ts", "--copies", "1",
                 "--json"]) == 0
    plain = json.loads(capsys.readouterr().out)
    assert plain["provenance"]["cache"] == "hit"
    assert plain["metrics"] == checkpointed["metrics"]


def test_simulate_resume_finishes_from_checkpoint(capsys, tmp_path, monkeypatch):
    """--resume picks up a half-done run's checkpoint and the finished
    metrics are bit-identical to an uninterrupted run."""
    import json

    from repro.api import SimulateRequest
    from repro.campaign import NullStore, engine_for_spec, run
    from repro.engine import CheckpointFile, CheckpointObserver

    from repro.campaign import GLOBAL_MEMORY

    GLOBAL_MEMORY.clear()
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    request = SimulateRequest(mix="W1", policy="ts", copies=1)
    spec = request.spec()
    uninterrupted = run(spec, store=NullStore())

    # Fake the interrupted first half exactly as the CLI would have
    # left it: same observer line-up (the CheckpointObserver included),
    # same file name, abandoned mid-run.
    ckpt_dir = tmp_path / "ckpt"
    checkpoint = CheckpointFile(ckpt_dir / f"{spec.key()}.checkpoint.json")
    engine = engine_for_spec(
        spec,
        extra_observers=(CheckpointObserver(checkpoint, every_windows=200),),
    )
    engine.step_windows(400)

    assert main(["simulate", "--mix", "W1", "--policy", "ts", "--copies", "1",
                 "--checkpoint-dir", str(ckpt_dir), "--resume",
                 "--json"]) == 0
    resumed = json.loads(capsys.readouterr().out)
    assert resumed["metrics"]["runtime_s"] == uninterrupted.runtime_s
    assert resumed["metrics"]["peak_amb_c"] == uninterrupted.peak_amb_c
    assert resumed["metrics"]["cpu_energy_j"] == uninterrupted.cpu_energy_j
    assert not list(ckpt_dir.glob("*.checkpoint.json*"))


def test_resume_without_checkpoint_dir_is_an_error(capsys):
    assert main(["server", "--platform", "PE1950", "--mix", "W1",
                 "--policy", "bw", "--copies", "1", "--resume"]) == 2
    assert "--checkpoint-dir" in capsys.readouterr().err
