"""Command-line interface."""

import pytest

from repro.cli import main


def test_simulate_command(capsys):
    code = main(["simulate", "--mix", "W1", "--policy", "ts", "--copies", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "DTM-TS" in out
    assert "peak AMB" in out


def test_compare_command(capsys):
    code = main(["compare", "--mix", "W1", "--copies", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "No-limit" in out
    assert "DTM-ACG" in out


def test_server_command(capsys):
    code = main(["server", "--platform", "PE1950", "--mix", "W1",
                 "--policy", "bw", "--copies", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "PE1950" in out
    assert "inlet" in out


def test_homogeneous_command(capsys):
    code = main(["homogeneous", "--platform", "SR1500AL", "--app", "swim",
                 "--duration", "60"])
    assert code == 0
    out = capsys.readouterr().out
    assert "swim" in out
    assert "AMB" in out


def test_unknown_policy_rejected():
    with pytest.raises(SystemExit):
        main(["simulate", "--policy", "warp"])


def test_command_required():
    with pytest.raises(SystemExit):
        main([])
