"""Two-level simulator integration tests (small batches)."""

import pytest

from repro.core.simulator import SimulationConfig, TwoLevelSimulator
from repro.dtm.acg import DTMACG
from repro.dtm.base import NoLimitPolicy
from repro.dtm.bw import DTMBW
from repro.dtm.cdvfs import DTMCDVFS
from repro.dtm.ts import DTMTS
from repro.errors import ConfigurationError, SimulationError
from repro.params.thermal_params import FDHS_1_0, INTEGRATED_AMBIENT


def _run(policy, window_model, **kwargs):
    defaults = dict(mix_name="W1", copies=1)
    defaults.update(kwargs)
    config = SimulationConfig(**defaults)
    return TwoLevelSimulator(config, policy, window_model=window_model).run()


def test_no_limit_completes_batch(window_model):
    result = _run(NoLimitPolicy(), window_model)
    assert result.finished_jobs == 4
    assert result.runtime_s > 0
    assert result.traffic_bytes > 0
    assert result.instructions > 0


def test_no_limit_exceeds_tdp(window_model):
    # Without DTM the AMB sails past its 110 degC limit (the premise of
    # the whole paper).
    result = _run(NoLimitPolicy(), window_model)
    assert result.peak_amb_c > 110.0


def test_every_dtm_scheme_respects_tdp(window_model):
    # A reading is taken every 10 ms, so the temperature can creep a few
    # millidegrees past the trigger inside one interval — the same
    # sensor-sampling slack the paper's TRP margin absorbs (§4.4.1).
    for policy in (DTMTS(), DTMBW(), DTMACG(), DTMCDVFS()):
        result = _run(policy, window_model)
        assert result.peak_amb_c <= 110.0 + 0.1, policy.name
        assert result.peak_dram_c <= 85.0 + 0.1, policy.name


def test_dtm_costs_runtime(window_model):
    baseline = _run(NoLimitPolicy(), window_model)
    throttled = _run(DTMTS(), window_model)
    assert throttled.runtime_s > baseline.runtime_s
    assert throttled.finished_jobs == baseline.finished_jobs


def test_acg_reduces_traffic(window_model):
    baseline = _run(NoLimitPolicy(), window_model)
    acg = _run(DTMACG(), window_model)
    assert acg.traffic_bytes < baseline.traffic_bytes


def test_instructions_are_workload_invariant(window_model):
    """Every policy must retire the same total instructions — the batch
    is fixed work, only its schedule changes."""
    results = [
        _run(policy, window_model)
        for policy in (NoLimitPolicy(), DTMTS(), DTMACG())
    ]
    totals = [r.instructions for r in results]
    assert max(totals) / min(totals) < 1.001


def test_trace_recorded_at_one_second_resolution(window_model):
    result = _run(NoLimitPolicy(), window_model)
    assert len(result.trace) == pytest.approx(result.runtime_s, abs=2)


def test_trace_can_be_disabled(window_model):
    result = _run(NoLimitPolicy(), window_model, record_trace=False)
    assert len(result.trace) == 0


def test_fdhs_cooling_binds_on_dram(window_model):
    result = _run(DTMTS(), window_model, cooling=FDHS_1_0)
    # The DRAM chips are the constraint under FDHS_1.0 (§4.4.1): they
    # approach their TDP much closer than the AMB approaches its own.
    assert (85.0 - result.peak_dram_c) < (110.0 - result.peak_amb_c)


def test_integrated_model_heats_more(window_model):
    isolated = _run(DTMTS(), window_model)
    integrated = _run(DTMTS(), window_model, ambient=INTEGRATED_AMBIENT)
    # Same inlet-to-threshold headroom philosophy, but CPU preheating
    # varies the ambient; the run completes and the mean ambient sits
    # above the integrated model's (lower) inlet temperature.
    assert integrated.mean_ambient_c > 45.0
    assert isolated.mean_ambient_c == pytest.approx(50.0)


def test_shutdown_fraction_positive_for_ts(window_model):
    result = _run(DTMTS(), window_model)
    assert result.shutdown_fraction > 0.0


def test_dtm_interval_overhead_charged(window_model):
    fast = _run(NoLimitPolicy(), window_model, dtm_interval_s=0.010)
    slow = _run(NoLimitPolicy(), window_model, dtm_interval_s=0.001)
    # 25 us of every 1 ms interval is overhead (2.5%) vs 0.25% at 10 ms.
    assert slow.runtime_s > fast.runtime_s * 1.015


def test_config_validation():
    with pytest.raises(ConfigurationError):
        SimulationConfig(dtm_interval_s=0.0)
    with pytest.raises(ConfigurationError):
        SimulationConfig(dtm_overhead_s=0.02, dtm_interval_s=0.01)
    with pytest.raises(ConfigurationError):
        SimulationConfig(copies=0)


def test_horizon_guard(window_model):
    config = SimulationConfig(mix_name="W1", copies=1, max_sim_s=1.0)
    with pytest.raises(SimulationError):
        TwoLevelSimulator(config, DTMTS(), window_model=window_model).run()


def test_normalization_helpers(window_model):
    baseline = _run(NoLimitPolicy(), window_model)
    other = _run(DTMTS(), window_model)
    assert other.normalized_runtime(baseline) > 1.0
    assert other.normalized_traffic(baseline) == pytest.approx(
        other.traffic_bytes / baseline.traffic_bytes
    )
    assert other.normalized_energy(baseline, "total") > 0
    with pytest.raises(SimulationError):
        other.normalized_energy(baseline, "plutonium")
