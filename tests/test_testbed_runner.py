"""Server experiment runner integration tests."""

import pytest

from repro.dtm.acg import DTMACG
from repro.dtm.base import NoLimitPolicy
from repro.dtm.bw import DTMBW
from repro.dtm.cdvfs import DTMCDVFS
from repro.dtm.comb import DTMCOMB
from repro.testbed.platforms import PE1950, SR1500AL
from repro.testbed.runner import ServerSimulator, run_homogeneous


def _run(platform, policy, model, **kwargs):
    defaults = dict(mix_name="W1", copies=1)
    defaults.update(kwargs)
    return ServerSimulator(platform, policy, window_model=model, **defaults).run()


def test_no_limit_completes(pe1950_model):
    result = _run(PE1950, NoLimitPolicy(cores=4), pe1950_model)
    assert result.finished_jobs == 4
    assert result.runtime_s > 0


def test_bw_respects_tdp(pe1950_model):
    result = _run(PE1950, DTMBW(PE1950.levels), pe1950_model)
    assert result.peak_amb_c <= PE1950.levels.amb_tdp_c + 0.5


def test_policies_slower_than_no_limit(pe1950_model):
    base = _run(PE1950, NoLimitPolicy(cores=4), pe1950_model)
    for policy in (
        DTMBW(PE1950.levels),
        DTMACG(PE1950.levels, min_active=2),
        DTMCDVFS(PE1950.levels, stopped_level=4),
    ):
        result = _run(PE1950, policy, pe1950_model)
        assert result.runtime_s > base.runtime_s, policy.name


def test_proposed_schemes_beat_bw(pe1950_model):
    """The headline Chapter 5 result on the PE1950."""
    bw = _run(PE1950, DTMBW(PE1950.levels), pe1950_model)
    acg = _run(PE1950, DTMACG(PE1950.levels, min_active=2), pe1950_model)
    cdvfs = _run(PE1950, DTMCDVFS(PE1950.levels, stopped_level=4), pe1950_model)
    assert acg.runtime_s < bw.runtime_s
    assert cdvfs.runtime_s < bw.runtime_s


def test_acg_cuts_l2_misses(pe1950_model):
    bw = _run(PE1950, DTMBW(PE1950.levels), pe1950_model)
    acg = _run(PE1950, DTMACG(PE1950.levels, min_active=2), pe1950_model)
    assert acg.l2_misses < bw.l2_misses * 0.95


def test_cdvfs_saves_cpu_power(sr1500al_model):
    bw = _run(SR1500AL, DTMBW(SR1500AL.levels), sr1500al_model)
    cdvfs = _run(SR1500AL, DTMCDVFS(SR1500AL.levels, stopped_level=4), sr1500al_model)
    assert cdvfs.average_cpu_power_w < bw.average_cpu_power_w


def test_comb_competitive_with_acg(sr1500al_model):
    acg = _run(SR1500AL, DTMACG(SR1500AL.levels, min_active=2), sr1500al_model)
    comb = _run(SR1500AL, DTMCOMB(SR1500AL.levels, min_active=2), sr1500al_model)
    assert comb.runtime_s <= acg.runtime_s * 1.1


def test_instructions_invariant_across_policies(sr1500al_model):
    # The 1 s accounting interval truncates each job's final window, so
    # totals agree to within a couple of percent, not exactly.
    results = [
        _run(SR1500AL, policy, sr1500al_model)
        for policy in (NoLimitPolicy(cores=4), DTMBW(SR1500AL.levels))
    ]
    assert results[0].instructions == pytest.approx(results[1].instructions, rel=0.02)


def test_ambient_override(sr1500al_model):
    hot = _run(SR1500AL, DTMBW(SR1500AL.levels), sr1500al_model)
    cool = _run(
        SR1500AL, DTMBW(SR1500AL.levels), sr1500al_model, ambient_override_c=26.0
    )
    assert cool.mean_inlet_c < hot.mean_inlet_c
    assert cool.runtime_s <= hot.runtime_s


def test_base_frequency_level_slows_compute(pe1950_model):
    """Fig. 5.13: a 2.0 GHz base clock costs compute-sensitive mixes
    (W8) visibly, while memory-bound mixes barely move (§5.4.5)."""
    fast = _run(PE1950, DTMBW(PE1950.levels), pe1950_model, mix_name="W8")
    slow = _run(
        PE1950, DTMBW(PE1950.levels), pe1950_model,
        mix_name="W8", base_frequency_level=3,
    )
    assert slow.runtime_s > fast.runtime_s
    # Memory-bound W1: within a few percent either way.
    fast_w1 = _run(PE1950, DTMBW(PE1950.levels), pe1950_model)
    slow_w1 = _run(
        PE1950, DTMBW(PE1950.levels), pe1950_model, base_frequency_level=3
    )
    assert slow_w1.runtime_s == pytest.approx(fast_w1.runtime_s, rel=0.08)


def test_homogeneous_run_produces_trace(sr1500al_model):
    trace, card = run_homogeneous(
        SR1500AL, "swim", duration_s=60.0, window_model=sr1500al_model
    )
    assert len(trace) == 60
    assert len(card.log("amb")) == 60
    # Temperatures rise from the idle-stable start.
    assert trace.amb_c[-1] > trace.amb_c[0]


def test_homogeneous_idle_start_near_measured_81c(sr1500al_model):
    """Fig. 5.4 anchor: the SR1500AL idles near 81 degC AMB."""
    trace, _ = run_homogeneous(
        SR1500AL, "gzip", duration_s=1.0, window_model=sr1500al_model
    )
    assert trace.amb_c[0] == pytest.approx(81.0, abs=3.0)


def test_homogeneous_safety_throttle_pins_100c(sr1500al_model):
    """Fig. 5.4: memory-intensive programs fluctuate around 100 degC
    once the safety throttle arms."""
    trace, _ = run_homogeneous(
        SR1500AL, "swim", duration_s=400.0, window_model=sr1500al_model
    )
    assert max(trace.amb_c) <= 102.0
    assert max(trace.amb_c) >= 99.0
