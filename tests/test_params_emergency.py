"""Emergency-level tables (Tables 4.3 and 5.1)."""

import pytest

from repro.errors import ConfigurationError
from repro.params.emergency import (
    EmergencyLevels,
    PE1950_LEVELS,
    SIMULATION_LEVELS,
    SR1500AL_LEVELS,
)
from repro.units import gbps


def test_simulation_has_five_levels():
    assert SIMULATION_LEVELS.level_count == 5


def test_simulation_amb_boundaries():
    t = SIMULATION_LEVELS
    assert t.amb_level(100.0) == 0
    assert t.amb_level(108.0) == 1
    assert t.amb_level(108.9) == 1
    assert t.amb_level(109.0) == 2
    assert t.amb_level(109.5) == 3
    assert t.amb_level(110.0) == 4


def test_simulation_dram_boundaries():
    t = SIMULATION_LEVELS
    assert t.dram_level(80.0) == 0
    assert t.dram_level(83.0) == 1
    assert t.dram_level(84.2) == 2
    assert t.dram_level(84.7) == 3
    assert t.dram_level(85.0) == 4


def test_overall_level_is_worse_of_the_two():
    t = SIMULATION_LEVELS
    assert t.level(100.0, 84.7) == 3
    assert t.level(109.6, 80.0) == 3
    assert t.level(110.0, 85.0) == 4


def test_bw_ladder_matches_table_4_3():
    caps = SIMULATION_LEVELS.bw_caps_bytes_per_s
    assert caps[0] is None
    assert caps[1] == pytest.approx(gbps(19.2))
    assert caps[2] == pytest.approx(gbps(12.8))
    assert caps[3] == pytest.approx(gbps(6.4))
    assert caps[4] == 0.0


def test_acg_ladder_matches_table_4_3():
    assert SIMULATION_LEVELS.acg_active_cores == (4, 3, 2, 1, 0)


def test_cdvfs_ladder_matches_table_4_3():
    assert SIMULATION_LEVELS.cdvfs_levels == (0, 1, 2, 3, 4)


def test_pe1950_table_5_1():
    t = PE1950_LEVELS
    assert t.level_count == 4
    assert t.amb_tdp_c == 90.0
    assert t.amb_level(75.0) == 0
    assert t.amb_level(76.0) == 1
    assert t.amb_level(80.0) == 2
    assert t.amb_level(84.0) == 3
    assert t.bw_caps_bytes_per_s[1] == pytest.approx(gbps(4.0))
    assert t.acg_active_cores == (4, 3, 2, 2)


def test_sr1500al_table_5_1():
    t = SR1500AL_LEVELS
    assert t.amb_tdp_c == 100.0
    assert t.amb_level(86.0) == 1
    assert t.amb_level(94.0) == 3
    assert t.bw_caps_bytes_per_s == (None, gbps(5.0), gbps(4.0), gbps(3.0))


def test_servers_ignore_dram_temperature():
    assert PE1950_LEVELS.dram_level(200.0) == 0


def test_with_amb_tdp_shifts_all_thresholds():
    shifted = PE1950_LEVELS.with_amb_tdp(88.0)
    assert shifted.amb_tdp_c == 88.0
    assert shifted.amb_thresholds_c == (74.0, 78.0, 82.0)
    assert shifted.amb_trp_c == pytest.approx(82.0)
    # Original untouched.
    assert PE1950_LEVELS.amb_thresholds_c == (76.0, 80.0, 84.0)


def test_ladder_length_validation():
    with pytest.raises(ConfigurationError):
        EmergencyLevels(
            amb_thresholds_c=(100.0,),
            dram_thresholds_c=(),
            bw_caps_bytes_per_s=(None,),  # needs 2 entries
            acg_active_cores=(4, 2),
            cdvfs_levels=(0, 1),
        )


def test_thresholds_must_ascend():
    with pytest.raises(ConfigurationError):
        EmergencyLevels(
            amb_thresholds_c=(109.0, 108.0),
            dram_thresholds_c=(),
            bw_caps_bytes_per_s=(None, None, None),
            acg_active_cores=(4, 3, 2),
            cdvfs_levels=(0, 1, 2),
        )


def test_trp_below_tdp_required():
    with pytest.raises(ConfigurationError):
        EmergencyLevels(
            amb_thresholds_c=(108.0,),
            dram_thresholds_c=(),
            bw_caps_bytes_per_s=(None, 0.0),
            acg_active_cores=(4, 0),
            cdvfs_levels=(0, 4),
            amb_tdp_c=110.0,
            amb_trp_c=111.0,
        )
