"""Eq. 3.1 / Eq. 3.2 power models and the per-DIMM traffic split."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.power import (
    ChannelTraffic,
    EnergyMeter,
    amb_power_w,
    channel_dimm_powers,
    dram_power_w,
)
from repro.power.dimm_power import hottest_dimm_power
from repro.units import gbps


def test_dram_static_power():
    assert dram_power_w(0.0, 0.0) == pytest.approx(0.98)


def test_dram_power_example():
    # 1 GB/s read + 0.5 GB/s write: 0.98 + 1.12 + 0.58.
    assert dram_power_w(gbps(1.0), gbps(0.5)) == pytest.approx(0.98 + 1.12 + 0.58)


def test_dram_write_costs_more_than_read():
    assert dram_power_w(0.0, gbps(1.0)) > dram_power_w(gbps(1.0), 0.0)


def test_dram_power_rejects_negative():
    with pytest.raises(ConfigurationError):
        dram_power_w(-1.0, 0.0)


def test_amb_idle_power_by_position():
    assert amb_power_w(0.0, 0.0, is_last_dimm=True) == pytest.approx(4.0)
    assert amb_power_w(0.0, 0.0, is_last_dimm=False) == pytest.approx(5.1)


def test_amb_power_example():
    # 2 GB/s local + 4 GB/s bypass on a middle AMB.
    expected = 5.1 + 0.19 * 4.0 + 0.75 * 2.0
    assert amb_power_w(gbps(2.0), gbps(4.0)) == pytest.approx(expected)


def test_amb_local_traffic_costs_more():
    local = amb_power_w(gbps(1.0), 0.0, is_last_dimm=True)
    bypass = amb_power_w(0.0, gbps(1.0), is_last_dimm=True)
    assert local > bypass


@given(
    st.floats(min_value=0, max_value=30e9),
    st.floats(min_value=0, max_value=30e9),
)
def test_amb_power_monotone_in_traffic(local, bypass):
    base = amb_power_w(local, bypass)
    assert amb_power_w(local + 1e9, bypass) > base
    assert amb_power_w(local, bypass + 1e9) > base


def test_channel_split_local_share():
    traffic = ChannelTraffic(read_bytes_per_s=gbps(3.2), write_bytes_per_s=gbps(0.8))
    powers = channel_dimm_powers(traffic, dimms=4)
    assert len(powers) == 4
    # Every DIMM sees the same local traffic, so DRAM power is equal.
    dram_values = {round(p.dram_w, 9) for p in powers}
    assert len(dram_values) == 1


def test_channel_split_bypass_decreases_along_chain():
    traffic = ChannelTraffic(gbps(4.0), gbps(1.0))
    powers = channel_dimm_powers(traffic, dimms=4)
    amb_values = [p.amb_w for p in powers]
    # Positions 0..2 are strictly decreasing (less bypass); the last
    # AMB additionally idles 1.1 W lower.
    assert amb_values[0] > amb_values[1] > amb_values[2] > amb_values[3]


def test_hottest_dimm_is_nearest_controller():
    traffic = ChannelTraffic(gbps(4.0), gbps(1.0))
    assert hottest_dimm_power(traffic, dimms=4).position == 0


def test_single_dimm_channel_is_last():
    traffic = ChannelTraffic(gbps(2.0), 0.0)
    powers = channel_dimm_powers(traffic, dimms=1)
    # One DIMM: no bypass, idles at the last-DIMM 4.0 W.
    assert powers[0].amb_w == pytest.approx(4.0 + 0.75 * 2.0)


def test_channel_split_conserves_local_traffic():
    traffic = ChannelTraffic(gbps(4.0), gbps(2.0))
    powers = channel_dimm_powers(traffic, dimms=4)
    # Sum of local DRAM dynamic power equals the whole channel's.
    total_dram_dynamic = sum(p.dram_w - 0.98 for p in powers)
    expected = 1.12 * 4.0 + 1.16 * 2.0
    assert total_dram_dynamic == pytest.approx(expected)


def test_channel_requires_dimm():
    with pytest.raises(ConfigurationError):
        channel_dimm_powers(ChannelTraffic(0.0, 0.0), dimms=0)


def test_energy_meter_accumulates():
    meter = EnergyMeter()
    meter.add("cpu", 100.0, 2.0)
    meter.add("cpu", 50.0, 2.0)
    meter.add("memory", 10.0, 4.0)
    assert meter.energy_j("cpu") == pytest.approx(300.0)
    assert meter.energy_j("memory") == pytest.approx(40.0)
    assert meter.total_energy_j() == pytest.approx(340.0)


def test_energy_meter_average_power():
    meter = EnergyMeter()
    meter.add("cpu", 100.0, 1.0)
    meter.add("cpu", 200.0, 3.0)
    assert meter.average_power_w("cpu") == pytest.approx(175.0)


def test_energy_meter_merged_channels():
    meter = EnergyMeter()
    meter.add("cpu", 10.0, 1.0)
    meter.add("memory", 20.0, 1.0)
    assert meter.merged("cpu", "memory") == pytest.approx(30.0)


def test_energy_meter_unknown_channel_is_zero():
    assert EnergyMeter().energy_j("nothing") == 0.0


def test_energy_meter_rejects_negative():
    meter = EnergyMeter()
    with pytest.raises(ConfigurationError):
        meter.add("cpu", -1.0, 1.0)
    with pytest.raises(ConfigurationError):
        meter.add("cpu", 1.0, -1.0)


@given(
    st.floats(min_value=0, max_value=20e9),
    st.floats(min_value=0, max_value=20e9),
    st.integers(min_value=1, max_value=8),
)
def test_dimm_power_positive_property(read, write, dimms):
    powers = channel_dimm_powers(ChannelTraffic(read, write), dimms)
    assert all(p.total_w > 0 for p in powers)
    assert all(p.amb_w >= 4.0 - 1e-9 for p in powers)
