"""Unit-conversion helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


def test_gbps_roundtrip():
    assert units.to_gbps(units.gbps(6.4)) == pytest.approx(6.4)


def test_gbps_value():
    assert units.gbps(1.0) == 1_000_000_000


def test_ns_roundtrip():
    assert units.s_to_ns(units.ns_to_s(15.0)) == pytest.approx(15.0)


def test_mt_to_hz_ddr_halves():
    # 667 MT/s means a 333.5 MHz bus clock.
    assert units.mt_per_s_to_hz(667.0) == pytest.approx(333.5e6)


def test_celsius_kelvin_roundtrip():
    assert units.kelvin_to_celsius(units.celsius_to_kelvin(85.0)) == pytest.approx(85.0)


def test_celsius_kelvin_offset():
    assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)


def test_joules():
    assert units.joules(65.0, 10.0) == pytest.approx(650.0)


def test_cache_line_constant():
    assert units.CACHE_LINE_BYTES == 64


def test_binary_prefixes():
    assert units.MIB == 1024 * units.KIB
    assert units.GIB == 1024 * units.MIB


@given(st.floats(min_value=0.0, max_value=1e12, allow_nan=False))
def test_gbps_monotone(value):
    assert units.gbps(value) >= 0
    assert math.isclose(units.to_gbps(units.gbps(value)), value, rel_tol=1e-12, abs_tol=1e-12)


@given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
def test_kelvin_roundtrip_property(celsius):
    back = units.kelvin_to_celsius(units.celsius_to_kelvin(celsius))
    assert math.isclose(back, celsius, rel_tol=1e-9, abs_tol=1e-9)
