"""Workload profiles, mixes and the batch scheduler."""

import pytest

from repro.errors import SchedulingError, WorkloadError
from repro.workloads.batch import BatchScheduler
from repro.workloads.mixes import SIMULATION_MIXES, WORKLOAD_MIXES, get_mix
from repro.workloads.profiles import (
    SPEC2000_HIGH,
    SPEC2000_MODERATE,
    all_apps,
    get_app,
)


def test_twelve_memory_intensive_cpu2000_selections():
    # §4.3.2: eight high + four moderate.
    assert len(SPEC2000_HIGH) == 8
    assert len(SPEC2000_MODERATE) == 4
    for name in SPEC2000_HIGH + SPEC2000_MODERATE:
        assert get_app(name).suite == "cpu2000"


def test_cpu2006_selections_present():
    # Table 5.2 programs.
    for name in ("milc", "leslie3d", "soplex", "GemsFDTD",
                 "libquantum", "lbm", "omnetpp", "wrf"):
        assert get_app(name).suite == "cpu2006"


def test_unknown_app_raises():
    with pytest.raises(WorkloadError):
        get_app("doom")


def test_all_apps_filter():
    cpu2000 = all_apps("cpu2000")
    assert all(p.suite == "cpu2000" for p in cpu2000)
    assert len(all_apps()) == len(cpu2000) + len(all_apps("cpu2006"))


def test_high_apps_are_more_intense_than_low():
    """The Fig. 5.5 intensity ordering: high-class programs generate more
    traffic per instruction at a quarter-cache share than the quiet ones."""
    def intensity(name):
        app = get_app(name)
        return app.misses_per_instruction(1024 * 1024)

    quiet = ("gzip", "crafty", "mesa", "eon", "sixtrack")
    for hot in SPEC2000_HIGH:
        for cold in quiet:
            assert intensity(hot) > intensity(cold)


def test_table_4_2_mixes():
    assert get_mix("W1").app_names == ("swim", "mgrid", "applu", "galgel")
    assert get_mix("W2").app_names == ("art", "equake", "lucas", "fma3d")
    assert get_mix("W8").app_names == ("galgel", "fma3d", "vpr", "apsi")
    assert len(SIMULATION_MIXES) == 8


def test_table_5_2_cpu2006_mixes():
    assert get_mix("W11").app_names == ("milc", "leslie3d", "soplex", "GemsFDTD")
    assert get_mix("W12").app_names == ("libquantum", "lbm", "omnetpp", "wrf")


def test_unknown_mix_raises():
    with pytest.raises(WorkloadError):
        get_mix("W99")


def test_every_mix_resolves_profiles():
    for mix in WORKLOAD_MIXES.values():
        assert len(mix.apps) == len(mix.app_names)


def test_batch_fills_slots_round_robin():
    scheduler = BatchScheduler(get_mix("W1"), copies=2, cores=4)
    apps = [scheduler.job_at(slot).app.name for slot in range(4)]
    assert apps == ["swim", "mgrid", "applu", "galgel"]
    assert scheduler.waiting_jobs == 4
    assert scheduler.total_jobs == 8


def test_batch_refills_on_completion():
    scheduler = BatchScheduler(get_mix("W1"), copies=2, cores=4)
    first = scheduler.job_at(0)
    finished = scheduler.advance({0: first.app.instructions})
    assert len(finished) == 1
    # Slot 0 now holds the first waiting job (swim copy #1).
    assert scheduler.job_at(0).app.name == "swim"
    assert scheduler.finished_jobs == 1


def test_batch_partial_progress():
    scheduler = BatchScheduler(get_mix("W1"), copies=1, cores=4)
    job = scheduler.job_at(0)
    before = job.remaining_instructions
    scheduler.advance({0: before / 2})
    assert scheduler.job_at(0) is job
    assert job.remaining_instructions == pytest.approx(before / 2)


def test_batch_done_after_all_work():
    scheduler = BatchScheduler(get_mix("W1"), copies=1, cores=4)
    while not scheduler.done:
        progress = {
            slot: scheduler.job_at(slot).remaining_instructions
            for slot in scheduler.occupied_slots()
        }
        scheduler.advance(progress)
    assert scheduler.finished_jobs == 4
    assert scheduler.remaining_instructions() == 0.0


def test_batch_running_apps_subset():
    scheduler = BatchScheduler(get_mix("W1"), copies=1, cores=4)
    running = scheduler.running_apps([1, 3])
    assert set(running) == {1, 3}
    assert running[1].name == "mgrid"


def test_batch_tail_leaves_empty_slots():
    scheduler = BatchScheduler(get_mix("W1"), copies=1, cores=4)
    # Finish three jobs; the queue is empty so three slots drain.
    for slot in range(3):
        scheduler.advance({slot: scheduler.job_at(slot).app.instructions})
    assert scheduler.occupied_slots() == [3]


def test_batch_progress_on_empty_slot_rejected():
    scheduler = BatchScheduler(get_mix("W1"), copies=1, cores=4)
    scheduler.advance({0: scheduler.job_at(0).app.instructions})
    for slot in range(4):
        if scheduler.job_at(slot) is None:
            with pytest.raises(SchedulingError):
                scheduler.advance({slot: 100.0})
            break


def test_batch_validation():
    with pytest.raises(SchedulingError):
        BatchScheduler(get_mix("W1"), copies=0, cores=4)
    with pytest.raises(SchedulingError):
        BatchScheduler(get_mix("W1"), copies=1, cores=0)


def test_remaining_instructions_decreases_monotonically():
    scheduler = BatchScheduler(get_mix("W2"), copies=1, cores=4)
    previous = scheduler.remaining_instructions()
    for _ in range(5):
        scheduler.advance({slot: 1e9 for slot in scheduler.occupied_slots()})
        now = scheduler.remaining_instructions()
        assert now < previous
        previous = now
