"""Eq. 3.5 thermal-RC dynamics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ThermalModelError
from repro.thermal.rc import RCNode, exponential_step


def test_step_moves_toward_stable():
    assert exponential_step(50.0, 100.0, 10.0, 50.0) > 50.0
    assert exponential_step(120.0, 100.0, 10.0, 50.0) < 120.0


def test_step_exact_one_tau():
    # After exactly tau seconds, the gap shrinks by 1/e.
    after = exponential_step(0.0, 100.0, 50.0, 50.0)
    assert after == pytest.approx(100.0 * (1 - math.exp(-1)))


def test_zero_dt_is_identity():
    assert exponential_step(42.0, 100.0, 0.0, 50.0) == pytest.approx(42.0)


def test_rejects_bad_arguments():
    with pytest.raises(ThermalModelError):
        exponential_step(0.0, 1.0, -1.0, 50.0)
    with pytest.raises(ThermalModelError):
        exponential_step(0.0, 1.0, 1.0, 0.0)


def test_node_many_small_steps_equal_one_big_step():
    # The exponential update composes exactly across subdivisions.
    node_a = RCNode(50.0, 20.0)
    node_b = RCNode(50.0, 20.0)
    for _ in range(100):
        node_a.step(100.0, 1.0)
    node_b.step(100.0, 100.0)
    assert node_a.temperature_c == pytest.approx(node_b.temperature_c, rel=1e-9)


def test_node_cached_gain_tracks_dt_change():
    node = RCNode(50.0, 0.0)
    node.step(100.0, 1.0)
    first = node.temperature_c
    node.reset(0.0)
    node.step(100.0, 2.0)  # different dt must not reuse the old gain
    second = node.temperature_c
    assert second > first


def test_node_never_overshoots():
    node = RCNode(50.0, 0.0)
    for _ in range(1000):
        node.step(100.0, 5.0)
    assert node.temperature_c <= 100.0 + 1e-9


def test_time_to_reach_matches_simulation():
    node = RCNode(50.0, 80.0)
    predicted = node.time_to_reach(stable_c=120.0, target_c=110.0)
    # Simulate with small steps to the target.
    sim = RCNode(50.0, 80.0)
    elapsed = 0.0
    while sim.temperature_c < 110.0:
        sim.step(120.0, 0.01)
        elapsed += 0.01
    assert elapsed == pytest.approx(predicted, rel=0.01)


def test_time_to_reach_unreachable():
    node = RCNode(50.0, 80.0)
    assert node.time_to_reach(stable_c=100.0, target_c=105.0) == math.inf


def test_time_to_reach_already_there():
    node = RCNode(50.0, 80.0)
    assert node.time_to_reach(stable_c=100.0, target_c=80.0) == 0.0


@given(
    st.floats(min_value=-50, max_value=150),
    st.floats(min_value=-50, max_value=150),
    st.floats(min_value=0.001, max_value=1000),
    st.floats(min_value=0.1, max_value=1000),
)
def test_step_bounded_between_current_and_stable(current, stable, dt, tau):
    after = exponential_step(current, stable, dt, tau)
    low, high = min(current, stable), max(current, stable)
    assert low - 1e-9 <= after <= high + 1e-9


@given(st.floats(min_value=0.01, max_value=500))
def test_longer_dt_gets_closer(dt):
    near = exponential_step(0.0, 100.0, dt, 50.0)
    nearer = exponential_step(0.0, 100.0, dt * 2, 50.0)
    assert nearer >= near - 1e-9
