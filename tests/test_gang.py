"""Gang execution: planning, bit-identity with serial runs, the vector
backend, and checkpoint/resume of ganged cells in a fresh process.

The acceptance property mirrors the engine suite's: however cells are
ganged (leader broadcast, lockstep, retirement mid-stream, checkpoint
and restore in a new interpreter), the per-cell encoded payloads equal
a solo :func:`engine_for_spec(...).run_to_completion()` byte for byte.
"""

from __future__ import annotations

import json
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro.analysis.specs import Chapter4Spec, Chapter5Spec
from repro.campaign import Campaign
from repro.campaign.spec import engine_for_spec, runner_for, spec_key
from repro.campaign.stores import MemoryStore
from repro.cli import main
from repro.cluster import VectorBackend, backend_for
from repro.engine import EngineStateSerializer, GangStrategy, plan_gangs
from repro.engine.gang import leader_signature
from repro.errors import CheckpointError, ConfigurationError

SRC_DIR = Path(__file__).resolve().parent.parent / "src"

#: A fast leader family: thermally-insensitive cells differing only in
#: a thermal-only axis, plus two thermally-sensitive lockstep partners.
_BASE = Chapter4Spec(mix="W1", policy="no-limit", copies=1)
_LEADER_FAMILY = tuple(
    replace(_BASE, inlet_delta_c=delta) for delta in (0.0, 1.0, 2.0)
)
_LOCKSTEP_PAIR = (
    replace(_BASE, policy="ts"),
    replace(_BASE, policy="ts", inlet_delta_c=1.0),
)


def _cells(specs):
    return [(spec_key(spec), spec) for spec in specs]


def _payload(spec, result) -> dict:
    return runner_for(spec.kind).encode(result)


def _serial_payloads(specs) -> dict[str, dict]:
    return {
        spec_key(spec): _payload(spec, engine_for_spec(spec).run_to_completion())
        for spec in specs
    }


# -- planning ---------------------------------------------------------------


def test_plan_gangs_groups_by_compatibility():
    specs = list(_LEADER_FAMILY) + list(_LOCKSTEP_PAIR) + [
        replace(_BASE, copies=2),  # different leader signature, singleton
        Chapter5Spec(mix="W1", policy="bw", copies=1),  # foreign group
    ]
    plan = plan_gangs(_cells(specs), batch_cells=16)
    modes = sorted((g.gang.mode, len(g.cells)) for g in plan.gangs)
    # The no-limit copies=2 singleton demotes into the lockstep gang;
    # the lone ch5 cell has no partner and runs solo.
    assert modes == [("leader", 3), ("lockstep", 3)]
    assert [spec.kind for _, spec in plan.solo] == ["ch5"]
    assert plan.ganged_cells == 6


def test_plan_gangs_chunks_and_demotes_singletons():
    family = [replace(_BASE, inlet_delta_c=0.5 * i) for i in range(5)]
    plan = plan_gangs(_cells(family), batch_cells=2)
    assert [len(g.cells) for g in plan.gangs] == [2, 2]
    assert all(g.gang.mode == "leader" for g in plan.gangs)
    # The fifth cell's chunk of one is pure overhead -> solo.
    assert len(plan.solo) == 1


def test_plan_gangs_rejects_tiny_batches():
    with pytest.raises(ConfigurationError, match="batch_cells"):
        plan_gangs(_cells(_LEADER_FAMILY), batch_cells=1)


def test_leader_signature_splits_on_workload_axes_only():
    a, b = _LEADER_FAMILY[0], _LEADER_FAMILY[1]
    assert leader_signature(a) == leader_signature(b)
    assert leader_signature(a) != leader_signature(replace(a, copies=2))
    assert leader_signature(a) != leader_signature(replace(a, mix="W2"))
    # Kinds with no declared thermal-only axes never form leader gangs.
    assert leader_signature(Chapter5Spec()) is None


def test_gang_strategy_validation():
    with pytest.raises(ConfigurationError, match="at least one"):
        GangStrategy([])
    engines = [engine_for_spec(spec) for spec in _LOCKSTEP_PAIR]
    with pytest.raises(ConfigurationError, match="mode"):
        GangStrategy(engines, mode="sideways")
    with pytest.raises(ConfigurationError, match="thermally-insensitive"):
        GangStrategy(engines, mode="leader")


# -- bit-identity -----------------------------------------------------------


@pytest.mark.parametrize("backend", ["python", "auto"])
def test_gang_results_match_serial_bit_for_bit(backend):
    specs = list(_LEADER_FAMILY) + list(_LOCKSTEP_PAIR)
    serial = _serial_payloads(specs)
    plan = plan_gangs(_cells(specs), batch_cells=16, backend=backend)
    assert not plan.solo
    for planned in plan.gangs:
        for (key, spec), result in zip(
            planned.cells, planned.gang.run_to_completion()
        ):
            assert _payload(spec, result) == serial[key]


def test_gang_restore_rejects_wrong_arity():
    gang = plan_gangs(_cells(_LEADER_FAMILY), batch_cells=16).gangs[0].gang
    with pytest.raises(CheckpointError, match="restore needs"):
        gang.restore(gang.checkpoint()[:1])


#: Fresh-interpreter driver: rebuild the same gang, restore the
#: per-cell snapshots, finish, print the encoded payloads in order.
_GANG_RESTORE_DRIVER = """
import json, sys
sys.path.insert(0, {src!r})
import repro.analysis.specs  # registers the ch4/ch5 spec types
from repro.campaign.spec import engine_for_spec, runner_for
from repro.cluster.wire import cell_from_wire
from repro.engine import EngineState, GangStrategy

request = json.load(sys.stdin)
specs = [cell_from_wire(raw) for raw in request["cells"]]
gang = GangStrategy(
    [engine_for_spec(spec) for spec in specs],
    mode=request["mode"],
    backend="python",
)
gang.restore([EngineState.from_dict(raw) for raw in request["states"]])
payloads = [
    runner_for(spec.kind).encode(result)
    for spec, result in zip(specs, gang.run_to_completion())
]
print(json.dumps(payloads))
"""


@pytest.mark.parametrize(
    "specs,mode",
    [(_LEADER_FAMILY, "leader"), (_LOCKSTEP_PAIR, "lockstep")],
    ids=["leader", "lockstep"],
)
def test_gang_checkpoint_restores_bit_identically_in_fresh_process(
    specs, mode
):
    from repro.cluster.wire import cell_to_wire

    serial = _serial_payloads(specs)
    plan = plan_gangs(_cells(specs), batch_cells=16, backend="python")
    (planned,) = plan.gangs
    assert planned.gang.mode == mode
    assert planned.gang.step_windows(211) == 211
    states = [state.to_dict() for state in planned.gang.checkpoint()]

    request = {
        "cells": [cell_to_wire(spec) for _, spec in planned.cells],
        "states": states,
        "mode": mode,
    }
    proc = subprocess.run(
        [sys.executable, "-c", _GANG_RESTORE_DRIVER.format(src=str(SRC_DIR))],
        input=json.dumps(request),
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    resumed = json.loads(proc.stdout)
    expected = [serial[key] for key, _ in planned.cells]
    # JSON round trip == bit identity (shortest-repr floats).
    assert resumed == json.loads(json.dumps(expected))


# -- the vector backend -----------------------------------------------------


def test_vector_backend_matches_serial_campaign():
    specs = list(_LEADER_FAMILY) + list(_LOCKSTEP_PAIR)
    serial = Campaign(specs, store=MemoryStore()).run()
    store = MemoryStore()
    with VectorBackend(batch_cells=4) as backend:
        rows = list(Campaign(specs, store=store, backend=backend).iter_run())
    assert [result for _, result, _, _ in rows] == serial
    assert [spec for spec, _, _, _ in rows] == specs  # spec order preserved
    assert all(not hit for _, _, hit, _ in rows)
    assert all(seconds > 0.0 for _, _, _, seconds in rows)

    # Second pass over a warm store: every cell self-serves as a hit.
    with VectorBackend(batch_cells=4) as backend:
        rows = list(Campaign(specs, store=store, backend=backend).iter_run())
    assert [result for _, result, _, _ in rows] == serial
    assert all(hit for _, _, hit, _ in rows)
    assert all(seconds == 0.0 for _, _, _, seconds in rows)


def test_vector_backend_validation():
    with pytest.raises(ConfigurationError, match="batch_cells"):
        VectorBackend(batch_cells=1)
    with pytest.raises(ConfigurationError, match="kernel backend"):
        VectorBackend(kernel_backend="fortran")


def test_backend_for_vector_wiring():
    backend = backend_for("vector", batch_cells=8)
    assert isinstance(backend, VectorBackend)
    assert backend.batch_cells == 8
    assert backend_for("vector").batch_cells == 16
    with pytest.raises(ConfigurationError, match="--batch-cells"):
        backend_for("serial", batch_cells=8)
    with pytest.raises(ConfigurationError, match="--jobs"):
        backend_for("vector", jobs=4)
    with pytest.raises(ConfigurationError, match="--workers"):
        backend_for("vector", workers=("http://x",))


def test_cli_campaign_vector_matches_serial(capsys, tmp_path, monkeypatch):
    from repro.campaign import GLOBAL_MEMORY

    args = ["campaign", "--mixes", "W1", "--policies", "no-limit,ts",
            "--copies", "1"]
    GLOBAL_MEMORY.clear()
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "vec"))
    assert main(args + ["--backend", "vector", "--batch-cells", "2"]) == 0
    vector_out = capsys.readouterr().out
    GLOBAL_MEMORY.clear()
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ser"))
    assert main(args + ["--backend", "serial"]) == 0
    assert capsys.readouterr().out == vector_out


def test_cli_batch_cells_requires_vector(capsys):
    code = main(["campaign", "--mixes", "W1", "--policies", "ts",
                 "--copies", "1", "--batch-cells", "4"])
    assert code != 0
    assert "--batch-cells" in capsys.readouterr().err


# -- the checkpoint serializer ----------------------------------------------


def test_serializer_output_matches_plain_dumps_across_writes():
    engine = engine_for_spec(_LOCKSTEP_PAIR[0])
    serializer = EngineStateSerializer()
    for _ in range(3):
        engine.step_windows(97)
        state = engine.checkpoint()
        assert serializer.serialize(state) == json.dumps(
            state.to_dict(), sort_keys=True
        )


def test_checkpoint_file_written_via_serializer_loads_identically(tmp_path):
    from repro.engine import CheckpointFile

    engine = engine_for_spec(_LOCKSTEP_PAIR[0])
    engine.step_windows(113)
    state = engine.checkpoint()
    plain = CheckpointFile(tmp_path / "plain.json")
    cached = CheckpointFile(tmp_path / "deep" / "cached.json")  # mkdir path
    plain.write(state)
    cached.write(state, serializer=EngineStateSerializer())
    assert (tmp_path / "plain.json").read_text() == (
        tmp_path / "deep" / "cached.json"
    ).read_text()
    assert cached.load().to_dict() == state.to_dict()


# -- lockstep vectorization: property-based bit-identity --------------------


from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

#: Policy families the vectorized lockstep path must reproduce
#: bit-for-bit: table-driven (ts), latch-driven (bw), multi-actuator
#: (comb), and the array-backed PID controller — alone and mixed, so
#: both the single-group decide_all fast case and the multi-group
#: scatter path are exercised.
_LOCKSTEP_FAMILIES = (
    ("ts",),
    ("bw",),
    ("comb",),
    ("bw+pid",),
    ("ts", "bw"),
    ("comb", "bw+pid"),
)


def _lockstep_specs(policies, delta_step):
    return [
        replace(_BASE, policy=policy, inlet_delta_c=delta_step * i)
        for policy in policies
        for i in range(2)
    ]


@settings(max_examples=12, derandomize=True, deadline=None)
@given(
    policies=st.sampled_from(_LOCKSTEP_FAMILIES),
    delta_step=st.floats(
        min_value=0.01, max_value=0.75,
        allow_nan=False, allow_infinity=False,
    ),
    backend=st.sampled_from(("python", "auto")),
    windows=st.integers(min_value=40, max_value=160),
)
def test_lockstep_gang_prefix_bitwise_identical_to_solo(
    policies, delta_step, backend, windows
):
    """Property: any thermally-sensitive gang's full engine state after
    N windows — temperatures, energy integrals, scheduler, policy
    latches and PID integrals — equals the solo engines' bit for bit,
    on both kernel backends."""
    specs = _lockstep_specs(policies, delta_step)
    solo = [engine_for_spec(spec) for spec in specs]
    for engine in solo:
        engine.step_windows(windows)
    plan = plan_gangs(_cells(specs), batch_cells=16, backend=backend)
    assert len(plan.gangs) == 1 and not plan.solo
    gang = plan.gangs[0].gang
    assert gang.mode == "lockstep"
    gang.step_windows(windows)
    gang_states = [state.to_dict() for state in gang.checkpoint()]
    solo_states = [engine.checkpoint().to_dict() for engine in solo]
    assert gang_states == solo_states


def test_lockstep_gang_identity_without_numpy(monkeypatch):
    """The pure-python vector path (no NumPy importable at all) stays
    bit-identical to solo engines, and the gang metrics register."""
    import repro.core.kernel as kernel
    from repro.obs.metrics import METRICS

    monkeypatch.setattr(kernel, "_import_numpy", lambda: None)
    specs = _lockstep_specs(("ts", "bw+pid"), 0.4)
    solo = [engine_for_spec(spec) for spec in specs]
    for engine in solo:
        engine.step_windows(120)
    plan = plan_gangs(_cells(specs), batch_cells=16)
    gang = plan.gangs[0].gang
    assert gang.kernel_backend == "python"
    gang.step_windows(120)
    assert [s.to_dict() for s in gang.checkpoint()] == [
        e.checkpoint().to_dict() for e in solo
    ]
    rendered = METRICS.render_text()
    for name in (
        "repro_gang_planned_total",
        "repro_gang_cells_total",
        "repro_gang_step_path_total",
    ):
        assert name in rendered
