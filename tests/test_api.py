"""The stable typed client API: envelopes, requests, client façade."""

from __future__ import annotations

import importlib
import sys

import pytest

from repro.api import (
    SCHEMA_VERSION,
    CampaignRequest,
    CompareRequest,
    Provenance,
    ReproClient,
    ResultEnvelope,
    ScenarioRequest,
    ServerRequest,
    SimulateRequest,
    check_schema_compatible,
    metrics_from_result,
    request_from_dict,
    request_to_dict,
    results_document,
    schema_major,
)
from repro.analysis.specs import CHAPTER4_POLICIES
from repro.campaign import MemoryStore, run
from repro.errors import ConfigurationError
from repro.testbed.platforms import PE1950, PLATFORMS, SR1500AL


# ---------------------------------------------------------------------------
# Envelope round-trip and schema compatibility
# ---------------------------------------------------------------------------


def _sample_envelope() -> ResultEnvelope:
    return ResultEnvelope(
        kind="ch4",
        scenario="ch4:AOHS_1.5:W1:ts",
        request={"type": "simulate", "mix": "W1", "policy": "ts"},
        metrics={"runtime_s": 12.5, "peak_amb_c": 101.25},
        provenance=Provenance(cache="miss", cache_key="ch4-abc", compute_seconds=0.25),
    )


def test_envelope_dict_round_trip_is_identical():
    envelope = _sample_envelope()
    raw = envelope.to_dict()
    assert ResultEnvelope.from_dict(raw).to_dict() == raw
    assert ResultEnvelope.from_dict(raw) == envelope


def test_envelope_json_is_canonical_and_versioned():
    text = _sample_envelope().to_json()
    assert '"schema_version": "{}"'.format(SCHEMA_VERSION) in text
    # Canonical form: sorted keys mean "kind" precedes "metrics".
    assert text.index('"kind"') < text.index('"metrics"')


def test_envelope_rejects_foreign_major():
    raw = _sample_envelope().to_dict()
    raw["schema_version"] = "2.0"
    with pytest.raises(ConfigurationError, match="incompatible schema_version"):
        ResultEnvelope.from_dict(raw)


def test_envelope_accepts_minor_bump():
    raw = _sample_envelope().to_dict()
    raw["schema_version"] = "1.9"
    assert ResultEnvelope.from_dict(raw).schema_version == "1.9"


def test_envelope_missing_fields_rejected():
    raw = _sample_envelope().to_dict()
    del raw["metrics"], raw["provenance"]
    with pytest.raises(ConfigurationError, match="missing fields"):
        ResultEnvelope.from_dict(raw)


def test_envelope_requires_mapping():
    with pytest.raises(ConfigurationError, match="JSON object"):
        ResultEnvelope.from_dict(["not", "a", "dict"])


def test_schema_major_parsing():
    assert schema_major("1.0") == 1
    assert schema_major("12.34") == 12
    check_schema_compatible(SCHEMA_VERSION)
    with pytest.raises(ConfigurationError, match="malformed schema_version"):
        schema_major("banana")
    with pytest.raises(ConfigurationError, match="malformed schema_version"):
        schema_major("1")


def test_provenance_validation():
    with pytest.raises(ConfigurationError, match="cache must be one of"):
        Provenance(cache="stale", cache_key="k")
    with pytest.raises(ConfigurationError, match="missing fields"):
        Provenance.from_dict({"cache": "hit"})


def test_provenance_tolerates_future_minor_fields():
    # Minor-version rule: a same-major emitter may add fields; a 1.0
    # consumer must tolerate (and may drop) them.
    provenance = Provenance.from_dict(
        {"cache": "hit", "cache_key": "k", "worker_id": 7}
    )
    assert provenance == Provenance(cache="hit", cache_key="k")


# ---------------------------------------------------------------------------
# Request validation and dict round-trips
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("request_obj", [
    SimulateRequest(mix="W2", policy="bw+pid", cooling="FDHS_1.0", copies=3),
    ServerRequest(platform="SR1500AL", mix="W1", policy="comb", copies=1),
    CompareRequest(mix="W3", cooling="AOHS_1.0", copies=1),
    CampaignRequest(grid="ch5", mixes=("W1",), policies=("bw", "comb"),
                    variants=("PE1950",), copies=1, jobs=2),
    ScenarioRequest(names=("hot-ambient", "cold-aisle"), copies=1),
])
def test_request_dict_round_trip(request_obj):
    raw = request_to_dict(request_obj)
    assert raw["type"] == type(request_obj).TYPE
    assert request_from_dict(raw) == request_obj


@pytest.mark.parametrize("bad, match", [
    (dict(policy="warp"), "unknown ch4 policy"),
    (dict(cooling="ICE"), "unknown cooling"),
    (dict(ambient="outdoors"), "ambient must be"),
    (dict(copies=0), "copies must be >= 1"),
    (dict(copies="two"), "copies must be an integer"),
])
def test_simulate_request_validation(bad, match):
    with pytest.raises(ConfigurationError, match=match):
        SimulateRequest(**bad)


def test_server_request_validation():
    with pytest.raises(ConfigurationError, match="unknown platform"):
        ServerRequest(platform="PDP11")
    with pytest.raises(ConfigurationError, match="unknown ch5 policy"):
        ServerRequest(policy="ts")


def test_compare_request_validation():
    with pytest.raises(ConfigurationError, match="unknown cooling"):
        CompareRequest(cooling="ICE")
    cells = CompareRequest(mix="W1", copies=1).cell_requests()
    assert [cell.policy for cell in cells] == list(CHAPTER4_POLICIES)
    assert cells[0].policy == "no-limit"


def test_campaign_request_validation():
    with pytest.raises(ConfigurationError, match="unknown campaign grid"):
        CampaignRequest(grid="ch6")
    with pytest.raises(ConfigurationError, match="jobs must be >= 1"):
        CampaignRequest(jobs=0)
    # Lists normalize to tuples so the request stays hashable.
    request = CampaignRequest(grid="ch4", mixes=["W1"], policies=["ts"])
    assert request.mixes == ("W1",)
    grid, specs = request.cells()
    assert grid.name == "ch4"
    assert len(specs) == 1


def test_campaign_request_default_axes():
    grid, specs = CampaignRequest(grid="ch4", copies=1).cells()
    # None axes resolve to the grid defaults: every policy, mix W1.
    assert len(specs) == len(grid.policy_choices)
    with pytest.raises(ConfigurationError, match="zero runs"):
        CampaignRequest(grid="ch4", mixes=()).cells()


def test_scenario_request_validation():
    with pytest.raises(ConfigurationError, match="at least one name"):
        ScenarioRequest(names=())
    with pytest.raises(ConfigurationError, match="unknown scenario"):
        ScenarioRequest(names=("warp",)).cells()
    grid, specs = ScenarioRequest(names=("all",), copies=1).cells()
    assert grid.name == "scenarios"
    assert len(specs) >= 13


def test_list_axes_reject_bare_strings():
    with pytest.raises(ConfigurationError, match="mixes must be a list"):
        CampaignRequest(grid="ch4", mixes="W1")
    with pytest.raises(ConfigurationError, match="policies must be a list"):
        request_from_dict({"type": "campaign", "policies": "ts"})
    with pytest.raises(ConfigurationError, match="names must be a list"):
        ScenarioRequest(names="all")
    with pytest.raises(ConfigurationError, match="variants must be a list"):
        CampaignRequest(grid="ch4", variants=12)


def test_request_from_dict_rejects_unknowns():
    with pytest.raises(ConfigurationError, match="unknown request type"):
        request_from_dict({"type": "teleport"})
    with pytest.raises(ConfigurationError, match="unknown simulate request fields"):
        request_from_dict({"type": "simulate", "mox": "W1"})
    with pytest.raises(ConfigurationError, match="JSON object"):
        request_from_dict([1, 2, 3])
    with pytest.raises(ConfigurationError, match="not an API request"):
        request_to_dict(object())


# ---------------------------------------------------------------------------
# Client façade
# ---------------------------------------------------------------------------


def test_client_simulate_provenance_miss_then_hit():
    client = ReproClient(MemoryStore())
    request = SimulateRequest(mix="W1", policy="ts", copies=1)
    first = client.simulate(request)
    assert first.provenance.cache == "miss"
    assert first.provenance.compute_seconds > 0.0
    assert first.provenance.cache_key.startswith("ch4-")
    second = client.simulate(request)
    assert second.provenance.cache == "hit"
    assert second.provenance.compute_seconds == 0.0
    # Hit and miss envelopes agree on everything but provenance.
    assert first.metrics == second.metrics
    assert first.request == second.request
    assert second.request["type"] == "simulate"
    assert second.kind == "ch4"
    assert second.scenario == "ch4:AOHS_1.5:W1:ts"


def test_client_simulate_kwargs_shorthand():
    envelope = ReproClient().simulate(mix="W1", policy="ts", copies=1)
    assert envelope.metrics["policy"] == "DTM-TS"
    assert envelope.metrics["runtime_s"] > 0


def test_client_server_envelope():
    envelope = ReproClient().server(
        ServerRequest(platform="PE1950", mix="W1", policy="bw", copies=1)
    )
    assert envelope.kind == "ch5"
    assert envelope.metrics["platform"] == "PE1950"
    assert envelope.metrics["average_cpu_power_w"] > 0
    assert envelope.request["platform"] == "PE1950"


def test_client_compare_shares_cache_with_simulate():
    client = ReproClient()
    envelopes = client.compare(CompareRequest(mix="W1", copies=1))
    assert len(envelopes) == len(CHAPTER4_POLICIES)
    assert envelopes[0].metrics["policy"] == "No-limit"
    # A compare cell is exactly a simulate cell: the follow-up hits.
    again = client.simulate(SimulateRequest(mix="W1", policy="ts", copies=1))
    assert again.provenance.cache == "hit"


def test_client_run_campaign_streams_envelopes():
    client = ReproClient()
    request = CampaignRequest(
        grid="ch4", mixes=("W1",), policies=("ts", "bw"), copies=1
    )
    iterator = client.run_campaign(request)
    assert iter(iterator) is iterator  # a true stream, not a list
    envelopes = list(iterator)
    assert [e.metrics["policy"] for e in envelopes] == ["DTM-TS", "DTM-BW"]
    assert all(e.schema_version == SCHEMA_VERSION for e in envelopes)
    assert all(e.request["type"] == "cell" for e in envelopes)
    # The table view reports the same cells in the same order.
    headers, rows = client.campaign_table(request)
    assert len(rows) == 2
    assert headers[0] == "cooling"
    assert [row[2] for row in rows] == ["ts", "bw"]


def test_streaming_compute_seconds_are_per_cell():
    # Fresh store: both cells are misses with their own execute time.
    client = ReproClient(MemoryStore())
    request = CampaignRequest(
        grid="ch4", mixes=("W1",), policies=("ts", "bw"), copies=1
    )
    first, second = list(client.run_campaign(request))
    assert first.provenance.cache == "miss"
    assert second.provenance.cache == "miss"
    assert first.provenance.compute_seconds > 0.0
    assert second.provenance.compute_seconds > 0.0
    # Warm repeat: hits report zero compute.
    warm = list(client.run_campaign(request))
    assert all(e.provenance.compute_seconds == 0.0 for e in warm)


def test_streaming_iterator_can_be_abandoned():
    client = ReproClient(MemoryStore())
    request = CampaignRequest(
        grid="ch4", mixes=("W1",), policies=("ts", "bw", "acg"),
        copies=1, jobs=2,
    )
    iterator = client.run_campaign(request)
    envelope = next(iterator)
    assert envelope.metrics["policy"] == "DTM-TS"
    iterator.close()  # must not hang on the rest of the grid


def test_client_run_scenarios_and_table():
    client = ReproClient()
    request = ScenarioRequest(names=("cold-aisle",), copies=1)
    envelopes = list(client.run_scenarios(request))
    assert len(envelopes) == 1
    assert envelopes[0].scenario == "cold-aisle"
    headers, rows = client.scenarios_table(request)
    assert headers[0] == "scenario"
    assert rows[0][0] == "cold-aisle"


def test_client_list_scenarios_filters():
    client = ReproClient()
    everything = client.list_scenarios()
    assert {"name", "kind", "mix", "policy", "tags", "description"} <= set(
        everything[0]
    )
    ch5 = client.list_scenarios(kind="ch5")
    assert ch5 and all(d["kind"] == "ch5" for d in ch5)
    assert client.list_scenarios(tag="nosuchtag") == []


def test_client_store_property_and_results_document():
    store = MemoryStore()
    client = ReproClient(store)
    assert client.store is store
    envelope = client.simulate(SimulateRequest(mix="W1", policy="ts", copies=1))
    document = results_document([envelope])
    assert document["schema_version"] == SCHEMA_VERSION
    assert document["results"][0] == envelope.to_dict()


def test_metrics_include_derived_power_averages():
    from repro.analysis.specs import Chapter4Spec

    result = run(Chapter4Spec(mix="W1", policy="ts", copies=1))
    metrics = metrics_from_result(result)
    assert metrics["average_cpu_power_w"] == pytest.approx(
        result.cpu_energy_j / result.runtime_s
    )
    assert "trace" not in metrics


# ---------------------------------------------------------------------------
# Satellites: platform registry + deprecation shim
# ---------------------------------------------------------------------------


def test_platforms_registry_is_canonical():
    assert PLATFORMS == {"PE1950": PE1950, "SR1500AL": SR1500AL}
    assert all(name == platform.name for name, platform in PLATFORMS.items())


def test_experiments_import_path_warns_but_works():
    sys.modules.pop("repro.analysis.experiments", None)
    with pytest.warns(DeprecationWarning, match="repro.api"):
        legacy = importlib.import_module("repro.analysis.experiments")
    specs = importlib.import_module("repro.analysis.specs")
    assert legacy.run_chapter4 is specs.run_chapter4
    assert legacy.Chapter4Spec is specs.Chapter4Spec
    assert set(legacy.__all__) == set(specs.__all__)
