"""Socket-aware server performance model."""

import pytest

from repro.errors import ConfigurationError
from repro.testbed.performance import ServerWindowModel, SocketLoad
from repro.testbed.platforms import PE1950, SR1500AL
from repro.workloads.profiles import get_app

F = 3.0e9
V = 1.2125


def _both_sockets(app_name="swim", active=2):
    app = get_app(app_name)
    return [
        SocketLoad(resident=(app, app), active_cores=active) for _ in range(2)
    ]


def test_served_throughput_never_exceeds_peak(pe1950_model):
    result = pe1950_model.evaluate(_both_sockets(), F, V)
    assert result.total_bytes_per_s <= PE1950.peak_bandwidth_bytes_per_s * 1.001


def test_cap_respected(pe1950_model):
    result = pe1950_model.evaluate(
        _both_sockets(), F, V, bandwidth_cap_bytes_per_s=3.0e9
    )
    assert result.total_bytes_per_s <= 3.0e9 * 1.001
    assert result.total_bytes_per_s > 2.5e9  # saturates the cap


def test_tighter_cap_less_progress(pe1950_model):
    loose = pe1950_model.evaluate(_both_sockets(), F, V, bandwidth_cap_bytes_per_s=5e9)
    tight = pe1950_model.evaluate(_both_sockets(), F, V, bandwidth_cap_bytes_per_s=2e9)
    loose_ips = sum(p.instructions_per_s for p in loose.programs)
    tight_ips = sum(p.instructions_per_s for p in tight.programs)
    assert tight_ips < loose_ips


def test_core_sharing_cuts_misses(pe1950_model):
    """The ACG effect measured in Fig. 5.8: one core per socket with two
    resident programs reduces L2 misses versus both cores running."""
    shared = pe1950_model.evaluate(_both_sockets(active=2), F, V)
    gated = pe1950_model.evaluate(_both_sockets(active=1), F, V)
    assert gated.l2_misses_per_s < shared.l2_misses_per_s


def test_core_sharing_costs_throughput(pe1950_model):
    """But gating is not free: total instruction rate drops (the
    measured ACG still loses to no-limit, Fig. 5.6)."""
    shared = pe1950_model.evaluate(_both_sockets(active=2), F, V)
    gated = pe1950_model.evaluate(_both_sockets(active=1), F, V)
    shared_ips = sum(p.instructions_per_s for p in shared.programs)
    gated_ips = sum(p.instructions_per_s for p in gated.programs)
    assert gated_ips < shared_ips


def test_short_time_slices_thrash(pe1950_model):
    """Fig. 5.15: below ~20 ms the switch-refill misses bite."""
    slow = pe1950_model.evaluate(
        _both_sockets(active=1), F, V, time_slice_s=0.005
    )
    normal = pe1950_model.evaluate(
        _both_sockets(active=1), F, V, time_slice_s=0.100
    )
    assert slow.l2_misses_per_s > normal.l2_misses_per_s
    slow_ips = sum(p.instructions_per_s for p in slow.programs)
    normal_ips = sum(p.instructions_per_s for p in normal.programs)
    assert slow_ips < normal_ips


def test_lower_frequency_reduces_heating(sr1500al_model):
    fast = sr1500al_model.evaluate(_both_sockets(), 3.0e9, 1.2125)
    slow = sr1500al_model.evaluate(_both_sockets(), 2.0e9, 1.0375)
    assert slow.heating_sum < fast.heating_sum


def test_memory_bound_ips_insensitive_to_frequency(sr1500al_model):
    """§5.4.5 / Isci et al.: memory-intensive programs lose little from
    a lower clock."""
    fast = sr1500al_model.evaluate(_both_sockets("swim"), 3.0e9, 1.2125)
    slow = sr1500al_model.evaluate(_both_sockets("swim"), 2.0e9, 1.0375)
    fast_ips = sum(p.instructions_per_s for p in fast.programs)
    slow_ips = sum(p.instructions_per_s for p in slow.programs)
    assert slow_ips > fast_ips * 0.8


def test_compute_bound_ips_tracks_frequency(sr1500al_model):
    """...while compute-bound ones scale with it (the W8 effect)."""
    fast = sr1500al_model.evaluate(_both_sockets("crafty"), 3.0e9, 1.2125)
    slow = sr1500al_model.evaluate(_both_sockets("crafty"), 2.0e9, 1.0375)
    fast_ips = sum(p.instructions_per_s for p in fast.programs)
    slow_ips = sum(p.instructions_per_s for p in slow.programs)
    assert slow_ips < fast_ips * 0.75


def test_single_program_socket(pe1950_model):
    app = get_app("mcf")
    result = pe1950_model.evaluate(
        [SocketLoad(resident=(app,), active_cores=2)], F, V
    )
    assert len(result.programs) == 1
    assert result.programs[0].instructions_per_s > 0


def test_read_write_split_positive(pe1950_model):
    result = pe1950_model.evaluate(_both_sockets("swim"), F, V)
    assert result.read_bytes_per_s > 0
    assert result.write_bytes_per_s > 0
    assert result.read_bytes_per_s > result.write_bytes_per_s


def test_memoization(pe1950_model):
    first = pe1950_model.evaluate(_both_sockets(), F, V)
    second = pe1950_model.evaluate(_both_sockets(), F, V)
    assert first is second


def test_socket_load_validation():
    app = get_app("swim")
    with pytest.raises(ConfigurationError):
        SocketLoad(resident=(), active_cores=1)
    with pytest.raises(ConfigurationError):
        SocketLoad(resident=(app,), active_cores=3)


def test_utilization_bounded(sr1500al_model):
    result = sr1500al_model.evaluate(_both_sockets(), F, V)
    assert 0.0 <= result.utilization <= 1.0
    for program in result.programs:
        assert 0.0 <= program.utilization <= 1.0
