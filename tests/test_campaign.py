"""Campaign engine: stores, runner registry, sweeps, parallel execution."""

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.analysis.specs import (
    Chapter4Spec,
    run_result_from_dict,
    run_result_to_dict,
    server_result_from_dict,
    server_result_to_dict,
)
from repro.campaign import (
    GLOBAL_MEMORY,
    Campaign,
    JsonDirStore,
    MemoryStore,
    NullStore,
    TieredStore,
    register_runner,
    registered_kinds,
    run,
    runner_for,
    spec_key,
    sweep,
)
from repro.core.results import RunResult, TemperatureTrace
from repro.errors import ConfigurationError
from repro.testbed.runner import ServerRunResult

# ---------------------------------------------------------------------------
# A tiny synthetic runner so engine tests don't pay for real simulations.
# ---------------------------------------------------------------------------

_CALLS = {"square": 0}


@dataclass(frozen=True)
class SquareSpec:
    kind: ClassVar[str] = "test-square"

    value: int = 2

    def key(self) -> str:
        return spec_key(self)


def _execute_square(spec: SquareSpec) -> dict:
    _CALLS["square"] += 1
    return {"value": spec.value, "square": spec.value**2}


register_runner("test-square", _execute_square, encode=dict, decode=dict)


def _sample_trace() -> TemperatureTrace:
    trace = TemperatureTrace()
    trace.append(0.0, 100.0, 75.0, 45.0)
    trace.append(1.0, 101.5, 75.5, 45.2)
    trace.append(2.0, 103.25, 76.0, 45.4)
    return trace


def _sample_run_result() -> RunResult:
    return RunResult(
        workload="W1", policy="DTM-TS", cooling="AOHS_1.5",
        runtime_s=123.5, traffic_bytes=1.5e12, l2_misses=2e9,
        instructions=5e11, cpu_energy_j=3.2e4, memory_energy_j=2.1e4,
        mean_ambient_c=45.0, peak_amb_c=109.9, peak_dram_c=79.5,
        shutdown_fraction=0.25, finished_jobs=8, trace=_sample_trace(),
    )


def _sample_server_result() -> ServerRunResult:
    return ServerRunResult(
        platform="PE1950", workload="W1", policy="DTM-BW",
        runtime_s=356.0, traffic_bytes=1.2e12, l2_misses=1.5e10,
        instructions=4e11, cpu_energy_j=3.2e4, memory_energy_j=1.4e4,
        mean_inlet_c=36.8, peak_amb_c=79.4, finished_jobs=8,
        trace=_sample_trace(),
    )


# ---------------------------------------------------------------------------
# Runner registry + sweeps
# ---------------------------------------------------------------------------


def test_registry_round_trip():
    runner = runner_for("test-square")
    assert runner.kind == "test-square"
    assert {"ch4", "ch5", "test-square"} <= set(registered_kinds())
    with pytest.raises(ConfigurationError):
        runner_for("no-such-kind")


def test_spec_key_distinguishes_kinds():
    assert SquareSpec(2).key() != SquareSpec(3).key()
    assert SquareSpec(2).key() == SquareSpec(2).key()
    assert SquareSpec(2).key().startswith("test-square-")


def test_sweep_expands_row_major():
    specs = sweep(SquareSpec, {"value": (3, 1, 2)})
    assert [s.value for s in specs] == [3, 1, 2]
    ch4 = sweep(
        Chapter4Spec,
        {"mix": ("W1", "W2"), "policy": ("ts", "acg")},
        cooling="FDHS_1.0",
    )
    assert [(s.mix, s.policy) for s in ch4] == [
        ("W1", "ts"), ("W1", "acg"), ("W2", "ts"), ("W2", "acg")
    ]
    assert all(s.cooling == "FDHS_1.0" for s in ch4)


def test_sweep_rejects_bad_grids():
    with pytest.raises(ConfigurationError):
        sweep(SquareSpec, {})
    with pytest.raises(ConfigurationError):
        sweep(SquareSpec, {"value": (1, 2)}, value=3)


# ---------------------------------------------------------------------------
# Stores
# ---------------------------------------------------------------------------


def test_memory_store_round_trip():
    store = MemoryStore()
    assert store.get("k") is None
    store.put("k", {"a": 1})
    assert store.get("k") == {"a": 1}
    assert "k" in store and "other" not in store
    store.clear()
    assert store.get("k") is None


def test_null_store_drops_everything():
    store = NullStore()
    store.put("k", {"a": 1})
    assert store.get("k") is None


def test_json_dir_store_round_trip(tmp_path):
    store = JsonDirStore(tmp_path)
    key = "test-square-abc123"
    assert store.get(key) is None
    store.put(key, {"value": 2, "square": 4})
    assert store.get(key) == {"value": 2, "square": 4}
    # Sharded layout, and no temp files left behind.
    assert (tmp_path / key[-2:] / f"{key}.json").exists()
    assert not list(tmp_path.rglob("*.tmp.*"))


def test_json_dir_store_reads_legacy_flat_layout(tmp_path):
    key = "ch4-0123456789abcdef0123"
    (tmp_path / f"{key}.json").write_text(json.dumps({"legacy": True}))
    assert JsonDirStore(tmp_path).get(key) == {"legacy": True}


def test_json_dir_store_write_is_atomic(tmp_path, monkeypatch):
    """A failed write never tears the previously published payload."""
    store = JsonDirStore(tmp_path)
    key = "test-square-atomic01"
    store.put(key, {"generation": 1})

    def torn_dump(payload, handle, **kwargs):
        handle.write('{"generation": 2, "torn')
        handle.flush()
        raise OSError("disk full")

    monkeypatch.setattr("repro.campaign.stores.disk.json.dump", torn_dump)
    store.put(key, {"generation": 2})
    monkeypatch.undo()
    # The reader still sees the intact old payload, and the torn temp
    # file was cleaned up rather than published over it.
    assert store.get(key) == {"generation": 1}
    assert not list(tmp_path.rglob("*.tmp.*"))


def test_json_dir_store_ignores_corrupt_files(tmp_path):
    store = JsonDirStore(tmp_path)
    key = "test-square-corrupt1"
    path = tmp_path / key[-2:] / f"{key}.json"
    path.parent.mkdir(parents=True)
    path.write_text('{"half": ')
    assert store.get(key) is None


def test_json_dir_store_stats(tmp_path):
    store = JsonDirStore(tmp_path)
    assert store.stats() == {
        "root": str(tmp_path), "entries": 0, "bytes": 0, "shards": 0,
        "versions": {}, "tmp_files": 0,
    }
    for index in range(5):
        store.put(f"test-square-stats{index:015d}", {"index": index})
    stats = store.stats()
    assert stats["entries"] == 5
    assert stats["bytes"] > 0
    assert 1 <= stats["shards"] <= 5
    # Legacy flat-layout entries count too.
    (tmp_path / "test-square-legacy000000.json").write_text("{}")
    assert store.stats()["entries"] == 6


def test_json_dir_store_prune_evicts_oldest_first(tmp_path):
    store = JsonDirStore(tmp_path)
    keys = [f"test-square-prune{index:015d}" for index in range(5)]
    now = time.time()
    for age, key in enumerate(keys):
        store.put(key, {"key": key})
        # Deterministic mtimes: keys[0] oldest ... keys[4] newest.
        stamp = now - (len(keys) - age) * 100
        os.utime(store._path(key), (stamp, stamp))
    assert store.prune(3) == 2
    assert store.get(keys[0]) is None and store.get(keys[1]) is None
    for key in keys[2:]:
        assert store.get(key) == {"key": key}
    assert store.stats()["entries"] == 3
    assert store.prune(3) == 0  # already within budget
    assert store.prune(0) == 3  # evict everything
    assert store.stats()["entries"] == 0
    with pytest.raises(ValueError):
        store.prune(-1)


def _hammer_store(root: str, writer: int, keys: list[str]) -> int:
    """Multi-process store worker: write/read loop, count torn reads."""
    store = JsonDirStore(root)
    torn = 0
    for round_index in range(25):
        for key in keys:
            store.put(
                key,
                {"writer": writer, "round": round_index, "blob": "x" * 512},
            )
            payload = store.get(key)
            if payload is None:
                # A concurrent os.replace never unlinks the target, so
                # a published key must always read back whole.
                torn += 1
            elif (
                set(payload) != {"writer", "round", "blob"}
                or len(payload["blob"]) != 512
            ):
                torn += 1
    return torn


def test_json_dir_store_concurrent_writers_never_tear_or_lose(tmp_path):
    """Four processes hammering four shared keys: atomic-replace means
    every read sees a complete payload and every key survives."""
    keys = [f"test-square-conc{index:016d}" for index in range(4)]
    with ProcessPoolExecutor(max_workers=4) as pool:
        futures = [
            pool.submit(_hammer_store, str(tmp_path), writer, keys)
            for writer in range(4)
        ]
        torn = sum(future.result() for future in futures)
    assert torn == 0
    store = JsonDirStore(tmp_path)
    for key in keys:
        payload = store.get(key)
        assert payload is not None and len(payload["blob"]) == 512
    assert store.stats()["entries"] == len(keys)
    assert not list(tmp_path.rglob("*.tmp.*"))


def test_tiered_store_backfills_front_layers(tmp_path):
    front = MemoryStore()
    back = JsonDirStore(tmp_path)
    store = TieredStore([front, back])
    back.put("k", {"a": 1})
    assert front.get("k") is None
    assert store.get("k") == {"a": 1}
    assert front.get("k") == {"a": 1}  # backfilled
    store.put("j", {"b": 2})
    assert front.get("j") == {"b": 2} and back.get("j") == {"b": 2}


# ---------------------------------------------------------------------------
# Result codecs through the disk store (satellite: cache round-trip)
# ---------------------------------------------------------------------------


def test_run_result_disk_round_trip(tmp_path):
    store = JsonDirStore(tmp_path)
    original = _sample_run_result()
    store.put("ch4-roundtrip0000000001", run_result_to_dict(original))
    restored = run_result_from_dict(store.get("ch4-roundtrip0000000001"))
    assert restored == original
    assert restored.trace.times_s == original.trace.times_s
    assert restored.trace.amb_c == original.trace.amb_c


def test_server_result_disk_round_trip(tmp_path):
    store = JsonDirStore(tmp_path)
    original = _sample_server_result()
    store.put("ch5-roundtrip0000000001", server_result_to_dict(original))
    restored = server_result_from_dict(store.get("ch5-roundtrip0000000001"))
    assert restored == original
    assert restored.trace.dram_c == original.trace.dram_c


# ---------------------------------------------------------------------------
# Engine: caching, dedup, parallel vs serial
# ---------------------------------------------------------------------------


def test_run_short_circuits_on_cache_hit(tmp_path):
    store = TieredStore([MemoryStore(), JsonDirStore(tmp_path)])
    _CALLS["square"] = 0
    first = run(SquareSpec(7), store)
    second = run(SquareSpec(7), store)
    assert first == second == {"value": 7, "square": 49}
    assert _CALLS["square"] == 1  # runner not invoked twice for one key
    # A fresh memory layer over the same disk store still hits disk.
    cold = TieredStore([MemoryStore(), JsonDirStore(tmp_path)])
    assert run(SquareSpec(7), cold) == first
    assert _CALLS["square"] == 1


def test_run_recomputes_with_null_store():
    _CALLS["square"] = 0
    run(SquareSpec(5), NullStore())
    run(SquareSpec(5), NullStore())
    assert _CALLS["square"] == 2


def test_campaign_deduplicates_specs():
    _CALLS["square"] = 0
    campaign = Campaign(
        [SquareSpec(3), SquareSpec(4), SquareSpec(3)], store=MemoryStore()
    )
    results = campaign.run()
    assert [r["square"] for r in results] == [9, 16, 9]
    assert _CALLS["square"] == 2


def test_campaign_parallel_matches_serial():
    specs = sweep(SquareSpec, {"value": (1, 2, 3, 4, 5)})
    serial = Campaign(specs, jobs=1, store=MemoryStore()).run()
    parallel = Campaign(specs, jobs=3, store=MemoryStore()).run()
    assert serial == parallel
    assert [r["square"] for r in serial] == [1, 4, 9, 16, 25]


def test_campaign_workers_honor_explicit_store(tmp_path, monkeypatch):
    """Pool workers must not consult the default cache stack when the
    campaign was given its own store."""
    poison = {"value": 21, "square": -1}
    key = SquareSpec(21).key()
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "default"))
    JsonDirStore(tmp_path / "default").put(key, poison)
    GLOBAL_MEMORY.put(key, poison)
    try:
        own = JsonDirStore(tmp_path / "own")
        specs = sweep(SquareSpec, {"value": (21, 22)})
        results = Campaign(specs, jobs=2, store=own).run()
        # A worker that consulted the default stack would return the
        # poisoned payload instead of recomputing.
        assert [r["square"] for r in results] == [441, 484]
        assert own.get(key) == {"value": 21, "square": 441}
    finally:
        GLOBAL_MEMORY._data.pop(key, None)


def test_campaign_parallel_real_runs_match_serial(tmp_path, monkeypatch):
    """Chapter 4 runs give identical results under jobs=1 and jobs=2."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "par"))
    specs = sweep(
        Chapter4Spec, {"policy": ("no-limit", "ts")}, mix="W1", copies=1
    )
    parallel = Campaign(specs, jobs=2, store=NullStore()).run()
    serial = Campaign(specs, jobs=1, store=NullStore()).run()
    assert serial == parallel
    assert serial[0].policy == "No-limit" or serial[0].runtime_s > 0


def test_campaign_rejects_bad_jobs():
    with pytest.raises(ConfigurationError):
        Campaign([SquareSpec(1)], jobs=0)


def test_campaign_worker_results_populate_parent_store():
    store = MemoryStore()
    specs = sweep(SquareSpec, {"value": (11, 12)})
    Campaign(specs, jobs=2, store=store).run()
    assert store.get(SquareSpec(11).key()) == {"value": 11, "square": 121}


def test_global_memory_is_default_front(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    _CALLS["square"] = 0
    GLOBAL_MEMORY._data.pop(SquareSpec(9).key(), None)
    run(SquareSpec(9))
    run(SquareSpec(9))
    assert _CALLS["square"] == 1
    assert GLOBAL_MEMORY.get(SquareSpec(9).key()) is not None
