"""Multi-channel memory system and calibration."""

import pytest

from repro.core.calibration import (
    calibrate_envelope,
    measure_idle_latency_s,
    measure_peak_bandwidth_bytes_per_s,
)
from repro.core.windowmodel import MemoryEnvelope
from repro.dram.system import MemorySystem
from repro.dram.trafficgen import poisson_trace, random_trace, stream_trace
from repro.errors import ConfigurationError


def test_requests_route_to_all_channels():
    system = MemorySystem()
    requests = stream_trace(count=64, interarrival_s=10e-9)
    system.run(requests)
    for controller in system.controllers:
        assert controller.stats.total_requests == 16


def test_stream_bandwidth_scales_with_channels():
    system = MemorySystem()
    requests = stream_trace(count=4000, interarrival_s=0.0)
    system.run(requests)
    total = system.total_stats()
    # 4 channels x ~5 GB/s.
    assert total.throughput_gbps() > 16.0


def test_random_trace_spreads_banks():
    system = MemorySystem()
    requests = random_trace(count=1000, address_space_bytes=1 << 30, seed=3)
    completed = system.run(requests)
    assert len(completed) == 1000


def test_empty_run():
    assert MemorySystem().run([]) == []


def test_activation_cap_validation():
    system = MemorySystem()
    with pytest.raises(ConfigurationError):
        system.set_activation_cap(0)


def test_idle_latency_measurement():
    latency = measure_idle_latency_s(requests=150)
    # Unloaded close-page read: ~50-90 ns on this platform.
    assert 40e-9 < latency < 100e-9


def test_peak_bandwidth_measurement():
    peak = measure_peak_bandwidth_bytes_per_s(requests=4000)
    assert peak > 16e9


def test_calibration_report_builds_envelope():
    report = calibrate_envelope(idle_requests=100, stream_requests=2000)
    envelope = report.to_envelope()
    assert isinstance(envelope, MemoryEnvelope)
    assert envelope.idle_latency_s == report.idle_latency_s


def test_envelope_defaults_match_cycle_level_measurements():
    """The window model's default envelope must track the cycle-level
    simulator: latency within a factor-ish band, and the default combined
    read+write peak (25.6 GB/s) above the measured read-only peak but
    below read + write link capacity (§3.2)."""
    report = calibrate_envelope(idle_requests=150, stream_requests=4000)
    default = MemoryEnvelope()
    assert default.idle_latency_s == pytest.approx(report.idle_latency_s, rel=0.5)
    read_peak = report.peak_bandwidth_bytes_per_s
    assert read_peak < default.peak_bandwidth_bytes_per_s < read_peak * 1.5


def test_poisson_trace_orders_arrivals():
    trace = poisson_trace(
        count=100, address_space_bytes=1 << 24, mean_interarrival_s=1e-7
    )
    times = [r.arrival_s for r in trace]
    assert times == sorted(times)
