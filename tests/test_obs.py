"""The ``repro.obs`` observability layer: tracing, metrics, SLOs, logs.

Covers the PR 9 acceptance criteria:

- spans parent correctly across nested blocks and propagate across the
  ``X-Repro-Trace`` header (one fleet campaign = one trace, asserted
  end to end over a live 2-worker :class:`LocalFleet`);
- the :class:`TracingObserver` is transient — attaching it never
  changes engine checkpoint shape or restore compatibility;
- the registry that moved to ``repro.obs.metrics`` keeps its old
  ``repro.jobs.metrics`` import path alive behind a one-shot
  deprecation warning, and its exposition passes the strict
  ``tools/check_prom.py`` checker (including the histogram
  bucket-double-count bug that checker caught);
- SLO evaluation: quantile + ratio objectives, ``no_data`` floors,
  threshold overrides, the breach gate, and the rendered Prometheus
  burn-rate rules;
- finished cells/jobs no longer leak PROGRESS broker entries;
- one-line JSON logs carry the active trace id and plain mode stays
  byte-compatible with the pre-obs output.
"""

from __future__ import annotations

import importlib
import json
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
import warnings
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
import check_prom  # noqa: E402

from repro.analysis.specs import Chapter4Spec
from repro.api import ReproService
from repro.campaign import (
    Campaign,
    MemoryStore,
    SingleFlightStore,
    engine_for_spec,
)
from repro.cluster import HttpWorkerBackend, LocalFleet
from repro.engine.progress import PROGRESS, ProgressBroker
from repro.errors import ConfigurationError
from repro.obs import (
    DEFAULT_SLOS,
    METRICS,
    MetricsRegistry,
    SloSpec,
    StructuredLog,
    TracingObserver,
    chrome_trace,
    evaluate,
    read_jsonl,
    render_alert_rules,
    slo_document,
    with_overrides,
)
from repro.obs.slo import BREACH, NO_DATA, OK, parse_overrides
from repro.obs.trace import TRACE_HEADER, TRACER, Tracer


@pytest.fixture
def tracer():
    """A process-global-free tracer, enabled, with a tiny ring."""
    tracer = Tracer()
    tracer.configure(enabled=True, sample_every=1)
    tracer.clear()
    return tracer


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer()
        tracer.configure(enabled=False)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert tracer.spans() == []
        assert tracer.propagation_header() is None

    def test_nested_spans_share_trace_and_parent(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        spans = tracer.spans()
        assert [s.name for s in spans] == ["inner", "outer"]
        assert spans[0].trace_id == spans[1].trace_id
        assert spans[1].parent_id is None

    def test_span_records_error_class_on_exception(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (span,) = tracer.spans()
        assert span.args["error"] == "ValueError"

    def test_propagation_header_roundtrip(self, tracer):
        with tracer.span("outer") as outer:
            header = tracer.propagation_header()
            assert header == f"{outer.trace_id}:{outer.span_id}"
        parsed = Tracer.parse_header(header)
        assert parsed == (outer.trace_id, outer.span_id)

    @pytest.mark.parametrize("bad", [
        None, "", "no-colon", "UPPER:abcd", "abcd:", ":abcd",
        "x" * 40 + ":abcd", "abcd:zzzz-not-hex",
    ])
    def test_malformed_headers_are_rejected(self, bad):
        assert Tracer.parse_header(bad) is None

    def test_activate_adopts_remote_context(self, tracer):
        with tracer.activate("feedbeef", "cafe0001"):
            with tracer.span("remote-child") as child:
                assert child.trace_id == "feedbeef"
                assert child.parent_id == "cafe0001"

    def test_ring_is_bounded(self, tracer):
        tracer.configure(ring=16)
        for index in range(50):
            with tracer.span("s", i=index):
                pass
        spans = tracer.spans()
        assert len(spans) == 16
        assert spans[-1].args["i"] == 49

    def test_jsonl_sink_roundtrips(self, tracer, tmp_path):
        sink = tmp_path / "spans.jsonl"
        tracer.configure(sink=str(sink))
        with tracer.span("persisted", level=3):
            pass
        (span,) = list(read_jsonl(str(sink)))
        assert span.name == "persisted"
        assert span.args == {"level": 3}

    def test_chrome_trace_shape(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        document = chrome_trace(tracer.spans())
        # Loadable by Perfetto: traceEvents with complete ("X") events,
        # microsecond timestamps, sorted ascending.
        assert json.loads(json.dumps(document)) == document
        events = document["traceEvents"]
        assert [e["ph"] for e in events] == ["X", "X"]
        assert events[0]["ts"] <= events[1]["ts"]
        assert all(e["dur"] > 0 for e in events)
        assert {e["name"] for e in events} == {"outer", "inner"}


class TestEngineTracing:
    def test_traced_engine_emits_sampled_window_spans(self, tracer):
        spec = Chapter4Spec(mix="W1", policy="ts", copies=1)
        engine = engine_for_spec(spec)
        observer = TracingObserver(tracer, sample_every=500)
        engine._observers.append(observer)
        engine._tracing = observer
        with tracer.span("cell"):
            engine.step_windows(1200)
        windows = [s for s in tracer.spans() if s.name == "window"]
        assert len(windows) == 3  # windows 0, 500, 1000
        for span in windows:
            assert {"policy_s", "kernel_s", "apply_s"} <= set(span.args)
            assert span.trace_id == tracer.spans()[0].trace_id

    def test_tracing_observer_is_checkpoint_transparent(self):
        """A checkpoint taken with tracing on restores with it off.

        The observer is ``transient``: it never appears in the
        checkpoint's observer states, so enabling tracing can never
        strand a checkpoint (or change its shape).
        """
        spec = Chapter4Spec(mix="W1", policy="ts", copies=1)
        plain = engine_for_spec(spec)
        plain.step_windows(300)
        baseline = plain.checkpoint().to_dict()

        traced = engine_for_spec(spec)
        observer = TracingObserver(Tracer(), sample_every=10)
        traced._observers.append(observer)
        traced._tracing = observer
        traced.step_windows(300)
        state = traced.checkpoint()
        assert state.to_dict() == baseline

        # Restore into a traced engine from an untraced checkpoint.
        resumed = engine_for_spec(spec)
        resumed_observer = TracingObserver(Tracer(), sample_every=10)
        resumed._observers.append(resumed_observer)
        resumed._tracing = resumed_observer
        resumed.restore(state)
        resumed.step_windows(100)
        plain.step_windows(100)
        assert resumed.checkpoint().to_dict() == plain.checkpoint().to_dict()


class TestMetricsMoved:
    def _fresh_shim(self):
        sys.modules.pop("repro.jobs.metrics", None)
        return importlib.import_module("repro.jobs.metrics")

    def test_shim_warns_exactly_once_on_first_import(self):
        with pytest.warns(DeprecationWarning) as records:
            shim = self._fresh_shim()
        matching = [
            r for r in records
            if "repro.jobs.metrics is deprecated" in str(r.message)
        ]
        assert len(matching) == 1
        assert "repro.obs.metrics" in str(matching[0].message)
        # Same objects, not copies.
        from repro.obs import metrics as obs_metrics

        assert shim.MetricsRegistry is obs_metrics.MetricsRegistry
        assert shim.METRICS is obs_metrics.METRICS

    def test_shim_cached_reimport_does_not_warn_again(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            self._fresh_shim()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            importlib.import_module("repro.jobs.metrics")

    def test_histogram_buckets_are_not_double_counted(self):
        """The bug tools/check_prom.py caught: ``observe`` stored
        cumulative bucket counts and ``render_text`` cumulated again,
        so every exposition overstated the distribution's spread."""
        registry = MetricsRegistry()
        registry.observe("repro_t_seconds", "t", 0.3)
        registry.observe("repro_t_seconds", "t", 12.0)
        text = registry.render_text()
        assert 'le="0.5"} 1' in text
        assert 'le="10"} 1' in text  # not 2, 3, 4... creeping upward
        assert 'le="30"} 2' in text
        assert 'le="+Inf"} 2' in text
        assert "repro_t_seconds_count 2" in text

    def test_counter_total_sums_with_label_filter(self):
        registry = MetricsRegistry()
        registry.counter_inc("repro_f_total", "f", status="ok", tenant="a")
        registry.counter_inc("repro_f_total", "f", status="ok", tenant="b")
        registry.counter_inc("repro_f_total", "f", status="failed", tenant="a")
        assert registry.counter_total("repro_f_total") == 3
        assert registry.counter_total("repro_f_total", status="failed") == 1
        assert registry.counter_total("repro_missing_total") == 0

    def test_histogram_quantile_is_conservative_upper_bound(self):
        registry = MetricsRegistry()
        for value in (0.3, 0.4, 0.45, 12.0):
            registry.observe("repro_q_seconds", "q", value)
        # p50 rank 2 of 4 lands in the 0.5 bucket; p99 in the 30 bucket.
        assert registry.histogram_quantile("repro_q_seconds", 0.5) == 0.5
        assert registry.histogram_quantile("repro_q_seconds", 0.99) == 30.0
        assert registry.histogram_quantile("repro_none", 0.5) is None

    def test_exposition_passes_strict_checker(self):
        registry = MetricsRegistry()
        registry.counter_inc("repro_c_total", "c", path='we"ird\\x\n')
        registry.gauge_set("repro_g", "g", 3)
        registry.observe("repro_h_seconds", "h", 0.3, route="/v1/x")
        registry.observe("repro_h_seconds", "h", 7.7, route="/v1/x")
        assert check_prom.check_text(registry.render_text()) == []

    def test_checker_flags_corrupted_expositions(self):
        good = (
            "# HELP repro_c_total c\n# TYPE repro_c_total counter\n"
            "repro_c_total 1\n"
        )
        assert check_prom.check_text(good) == []
        assert check_prom.check_text(good.replace("# HELP", "# XELP"))
        # TYPE before HELP.
        swapped = (
            "# TYPE repro_c_total counter\n# HELP repro_c_total c\n"
            "repro_c_total 1\n"
        )
        assert any("precede" in e for e in check_prom.check_text(swapped))
        # +Inf bucket disagreeing with _count.
        histogram = (
            "# HELP repro_h h\n# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 1\nrepro_h_bucket{le="+Inf"} 1\n'
            "repro_h_sum 0.5\nrepro_h_count 2\n"
        )
        assert any(
            "_count" in e for e in check_prom.check_text(histogram)
        )
        # Unescaped backslash in a label value.
        assert any(
            "illegal escape" in e
            for e in check_prom.check_text(
                "# HELP x_total x\n# TYPE x_total counter\n"
                'x_total{a="b\\path"} 1\n'
            )
        )


class TestStoreMetrics:
    def test_get_or_compute_counts_hits_and_misses(self):
        before_hit = METRICS.counter_total(
            "repro_store_requests_total", cache="hit"
        )
        before_miss = METRICS.counter_total(
            "repro_store_requests_total", cache="miss"
        )
        store = MemoryStore()
        store.get_or_compute("k1", lambda: ({"v": 1}, {}))
        store.get_or_compute("k1", lambda: ({"v": 1}, {}))
        store.get_or_compute("k1", lambda: ({"v": 1}, {}))
        assert METRICS.counter_total(
            "repro_store_requests_total", cache="miss"
        ) == before_miss + 1
        assert METRICS.counter_total(
            "repro_store_requests_total", cache="hit"
        ) == before_hit + 2

    def test_single_flight_counts_led_and_coalesced(self):
        before_led = METRICS.counter_total(
            "repro_store_single_flight_total", outcome="led"
        )
        before_coalesced = METRICS.counter_total(
            "repro_store_single_flight_total", outcome="coalesced"
        )
        store = SingleFlightStore(MemoryStore(), scope="test-obs-sf")
        gate = threading.Barrier(3)
        release = threading.Event()

        def compute():
            release.wait(timeout=10)
            return {"v": 1}, {}

        def racer():
            gate.wait()
            store.get_or_compute("cold", compute)

        pool = [threading.Thread(target=racer) for _ in range(3)]
        for thread in pool:
            thread.start()
        # Leader is blocked inside compute(); give the other two time
        # to reach the flight table as followers, then release.
        time.sleep(0.2)
        release.set()
        for thread in pool:
            thread.join(timeout=10)
        assert METRICS.counter_total(
            "repro_store_single_flight_total", outcome="led"
        ) == before_led + 1
        assert METRICS.counter_total(
            "repro_store_single_flight_total", outcome="coalesced"
        ) == before_coalesced + 2


class TestSlo:
    def test_quantile_slo_ok_and_breach(self):
        registry = MetricsRegistry()
        spec = SloSpec(
            name="p99", description="d", kind="quantile",
            metric="repro_l_seconds", threshold=1.0,
        )
        (result,) = evaluate(registry, (spec,))
        assert result.status == NO_DATA and result.value is None
        registry.observe("repro_l_seconds", "l", 0.3)
        (result,) = evaluate(registry, (spec,))
        assert result.status == OK and result.value == 0.5
        for _ in range(200):
            registry.observe("repro_l_seconds", "l", 20.0)
        (result,) = evaluate(registry, (spec,))
        assert result.status == BREACH and result.value == 30.0

    def test_ratio_slo_with_min_events_floor(self):
        registry = MetricsRegistry()
        spec = SloSpec(
            name="err", description="d", kind="ratio",
            metric="repro_done_total",
            event_labels=(("status", "failed"),),
            threshold=0.25, min_events=4,
        )
        registry.counter_inc("repro_done_total", "d", status="failed")
        (result,) = evaluate(registry, (spec,))
        assert result.status == NO_DATA  # 1 event < min_events=4
        for _ in range(3):
            registry.counter_inc("repro_done_total", "d", status="completed")
        (result,) = evaluate(registry, (spec,))
        assert result.status == OK and result.value == 0.25
        registry.counter_inc("repro_done_total", "d", status="failed")
        (result,) = evaluate(registry, (spec,))
        assert result.status == BREACH and result.value == 0.4

    def test_ge_direction_floor_objective(self):
        registry = MetricsRegistry()
        spec = SloSpec(
            name="warm", description="d", kind="ratio",
            metric="repro_req_total", event_labels=(("cache", "hit"),),
            direction="ge", threshold=0.5,
        )
        registry.counter_inc("repro_req_total", "r", cache="hit")
        registry.counter_inc("repro_req_total", "r", cache="miss")
        (result,) = evaluate(registry, (spec,))
        assert result.status == OK
        for _ in range(3):
            registry.counter_inc("repro_req_total", "r", cache="miss")
        (result,) = evaluate(registry, (spec,))
        assert result.status == BREACH and result.value == 0.2

    def test_document_counts_breaches(self):
        registry = MetricsRegistry()
        registry.observe("repro_job_latency_seconds", "l", 500.0)
        document = slo_document(registry)
        assert document["status"] == BREACH
        assert document["breaches"] == 1
        by_name = {entry["name"]: entry for entry in document["slos"]}
        assert by_name["p99_job_latency"]["status"] == BREACH
        assert by_name["warm_hit_ratio"]["status"] == NO_DATA

    def test_overrides_validate_names(self):
        overridden = with_overrides(DEFAULT_SLOS, {"p99_job_latency": 7.5})
        by_name = {spec.name: spec for spec in overridden}
        assert by_name["p99_job_latency"].threshold == 7.5
        assert by_name["p99_queue_wait"].threshold == 30.0
        with pytest.raises(ConfigurationError, match="unknown SLO"):
            with_overrides(DEFAULT_SLOS, {"p99_job_latencyy": 1.0})

    def test_parse_overrides(self):
        assert parse_overrides(["a=0.5", "b=2"]) == {"a": 0.5, "b": 2.0}
        with pytest.raises(ConfigurationError):
            parse_overrides(["nothreshold"])
        with pytest.raises(ConfigurationError):
            parse_overrides(["a=notanumber"])

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            SloSpec(name="x", description="d", kind="mean",
                    metric="m", threshold=1.0)
        with pytest.raises(ConfigurationError):
            SloSpec(name="x", description="d", kind="ratio",
                    metric="m", threshold=1.0, direction="gt")

    def test_rendered_rules_cover_every_slo(self):
        text = render_alert_rules()
        assert "groups:" in text
        assert "P99JobLatencyBreach" in text
        assert "JobErrorRateFastBurn" in text
        assert "JobErrorRateSlowBurn" in text
        # ge-direction budget is inverted: 1 - 0.5 threshold.
        assert "WarmHitRatioFastBurn" in text
        assert "> 7.2" in text  # 14.4 * (1 - 0.5)
        assert 'severity: page' in text and 'severity: ticket' in text


class TestProgressPruning:
    def test_forget_and_forget_prefix(self):
        broker = ProgressBroker()
        with broker.track("job-1/cell-a"):
            broker.publish({"w": 1})
        with broker.track("job-1/cell-b"):
            broker.publish({"w": 2})
        with broker.track("job-2/cell-a"):
            broker.publish({"w": 3})
        assert broker.forget("job-1/cell-a") is True
        assert broker.forget("job-1/cell-a") is False
        assert broker.forget_prefix("job-1/") == 1
        assert set(broker.snapshot()) == {"job-2/cell-a"}
        broker.clear()

    def test_completed_job_leaves_no_progress_entries(self, tmp_path):
        from repro.jobs import JobsManager

        store = MemoryStore()
        manager = JobsManager(
            tmp_path / "jobs", store=store, window_slice=200
        )
        manager.start()
        try:
            document = manager.submit_body({"request": {
                "type": "simulate", "mix": "W1", "policy": "ts", "copies": 1,
            }})
            job_id = document["job"]["id"]
            deadline = time.monotonic() + 120
            while not manager.queue.get(job_id).terminal:
                assert time.monotonic() < deadline, "job hung"
                time.sleep(0.01)
            assert manager.queue.get(job_id).status == "completed"
        finally:
            manager.stop(drain=False)
        leaked = [
            label for label in PROGRESS.snapshot()
            if label.startswith(f"{job_id}/")
        ]
        assert leaked == []

    def test_cancelled_job_leaves_no_progress_entries(self, tmp_path):
        from repro.jobs import JobsManager

        manager = JobsManager(
            tmp_path / "jobs", store=MemoryStore(), window_slice=100
        )
        manager.start()
        try:
            document = manager.submit_body({"request": {
                "type": "simulate", "mix": "W1", "policy": "ts", "copies": 1,
            }})
            job_id = document["job"]["id"]
            deadline = time.monotonic() + 60
            while manager.queue.get(job_id).status == "queued":
                assert time.monotonic() < deadline
                time.sleep(0.005)
            manager.cancel(job_id)
            while not manager.queue.get(job_id).terminal:
                assert time.monotonic() < deadline, "cancel hung"
                time.sleep(0.01)
        finally:
            manager.stop(drain=False)
        leaked = [
            label for label in PROGRESS.snapshot()
            if label.startswith(f"{job_id}/")
        ]
        assert leaked == []


class TestStructuredLog:
    def test_plain_mode_prints_only_explicit_messages(self, capsys):
        log = StructuredLog()
        log.configure(json_mode=False)
        log.info("service.listening", "listening on :8765", port=8765)
        log.info("job.cell_finished", job="j", cell="c")  # silent
        captured = capsys.readouterr()
        assert captured.out == "listening on :8765\n"
        assert captured.err == ""

    def test_json_mode_emits_one_line_documents(self, capsys):
        log = StructuredLog()
        log.configure(json_mode=True)
        log.warning("fleet.worker_dead", worker="w0", rescued=3)
        log.error("job.failed", job="j1")
        captured = capsys.readouterr()
        assert captured.out == ""
        line, error_line = captured.err.strip().splitlines()
        assert json.loads(error_line)["level"] == "error"
        document = json.loads(line)
        assert document["event"] == "fleet.worker_dead"
        assert document["level"] == "warning"
        assert document["worker"] == "w0"
        assert document["rescued"] == 3
        assert "ts" in document

    def test_json_logs_carry_active_trace_id(self, capsys):
        from repro.obs.trace import TRACER

        log = StructuredLog()
        log.configure(json_mode=True)
        TRACER.configure(enabled=True)
        try:
            with TRACER.span("op") as span:
                log.info("inside", step=1)
        finally:
            TRACER.configure(enabled=False)
            TRACER.clear()
        document = json.loads(capsys.readouterr().err.strip())
        assert document["trace_id"] == span.trace_id


@pytest.fixture(scope="module")
def traced_service():
    """A threaded service with tracing enabled for the trace routes."""
    from repro.obs.trace import TRACER

    TRACER.configure(enabled=True)
    TRACER.clear()
    svc = ReproService(port=0)
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    yield svc
    svc.shutdown()
    svc.server_close()
    thread.join(timeout=5)
    TRACER.configure(enabled=False)
    TRACER.clear()


def _get_json(url: str):
    with urllib.request.urlopen(url) as response:
        return response.status, json.loads(response.read())


def _wait_for_spans(trace_id: str, timeout: float = 2.0):
    """Poll the ring briefly: the handler records its span in __exit__
    *after* writing the response, so the client can observe the reply a
    hair before the span lands."""
    deadline = time.monotonic() + timeout
    while True:
        spans = TRACER.spans(trace_id)
        if spans or time.monotonic() >= deadline:
            return spans
        time.sleep(0.01)


class TestServiceRoutes:
    def test_slo_route_serves_document(self, traced_service):
        status, document = _get_json(traced_service.url + "/v1/slo")
        assert status == 200
        assert document["status"] in (OK, BREACH)
        names = {entry["name"] for entry in document["slos"]}
        assert {"p99_job_latency", "warm_hit_ratio"} <= names

    def test_http_spans_join_the_callers_trace(self, traced_service):
        from repro.obs.trace import TRACER

        request = urllib.request.Request(
            traced_service.url + "/v1/simulate?mix=W1&policy=ts&copies=1",
            headers={TRACE_HEADER: "feedface00000001:abcd000000000001"},
        )
        with urllib.request.urlopen(request) as response:
            assert response.status == 200
        spans = _wait_for_spans("feedface00000001")
        assert spans, "no spans joined the propagated trace"
        http = [s for s in spans if s.name == "http"]
        assert http and http[0].parent_id == "abcd000000000001"
        assert http[0].args["route"] == "/v1/simulate"

        status, document = _get_json(
            traced_service.url + "/v1/trace/feedface00000001"
        )
        assert status == 200
        trace_ids = {
            event["args"]["trace_id"] for event in document["traceEvents"]
        }
        assert trace_ids == {"feedface00000001"}

    def test_unknown_trace_is_404(self, traced_service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                traced_service.url + "/v1/trace/deadbeef00000000"
            )
        assert excinfo.value.code == 404

    def test_metrics_route_passes_strict_checker(self, traced_service):
        with urllib.request.urlopen(traced_service.url + "/metrics") as resp:
            text = resp.read().decode()
        assert check_prom.check_text(text) == [], (
            check_prom.check_text(text)
        )


class TestFleetTracePropagation:
    def test_two_worker_campaign_is_one_trace(self, tmp_path):
        """PR 9 acceptance: one fleet campaign = one trace.

        The coordinator opens a campaign span; both workers run with
        ``REPRO_TRACE=1`` and must record their cell spans under the
        coordinator's trace id, provable by fetching each worker's
        ``/v1/trace/<trace_id>`` and the Chrome export's validity.
        """
        from repro.obs.trace import TRACER

        specs = [
            Chapter4Spec(mix="W1", policy=policy, copies=1)
            for policy in ("ts", "acg", "bw", "no-limit")
        ]
        TRACER.configure(enabled=True)
        TRACER.clear()
        try:
            with LocalFleet(
                2, env={"REPRO_TRACE": "1", "REPRO_CACHE": "0"}
            ) as fleet:
                with TRACER.span("campaign", cells=len(specs)) as root:
                    trace_id = root.trace_id
                    with HttpWorkerBackend(
                        fleet.urls, chunk_cells=2
                    ) as backend:
                        results = Campaign(
                            specs, store=MemoryStore(), backend=backend
                        ).run()
                assert len(results) == len(specs)

                worker_spans = []
                for url in fleet.urls:
                    status, document = _get_json(
                        f"{url}/v1/trace/{trace_id}?format=spans"
                    )
                    assert status == 200
                    worker_spans.extend(document["spans"])
        finally:
            TRACER.configure(enabled=False)
            TRACER.clear()

        assert worker_spans, "workers recorded no spans for the trace"
        assert {s["trace_id"] for s in worker_spans} == {trace_id}
        names = {s["name"] for s in worker_spans}
        assert "http" in names, names
        assert "cell" in names or "worker.run" in names, names
        # Sampled engine window spans rode along under the same trace.
        window_spans = [s for s in worker_spans if s["name"] == "window"]
        assert window_spans, "no engine window spans in the trace"
        assert all(
            {"policy_s", "kernel_s", "apply_s"} <= set(s["args"])
            for s in window_spans
        )
        # The merged Chrome export is valid and spans both processes.
        from repro.obs.trace import Span

        document = chrome_trace(
            [Span.from_dict(s) for s in worker_spans]
            + TRACER.spans(trace_id)
        )
        parsed = json.loads(json.dumps(document))
        assert len(parsed["traceEvents"]) == len(worker_spans) + len(
            TRACER.spans(trace_id)
        )
        assert len({e["pid"] for e in parsed["traceEvents"]}) >= 2


class TestCli:
    def test_trace_export_from_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        tracer = Tracer()
        tracer.configure(
            enabled=True, sink=str(tmp_path / "spans.jsonl")
        )
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        out = tmp_path / "trace.json"
        code = main([
            "trace", "export",
            "--input", str(tmp_path / "spans.jsonl"),
            "--output", str(out),
        ])
        assert code == 0
        document = json.loads(out.read_text())
        assert {e["name"] for e in document["traceEvents"]} == {
            "outer", "inner"
        }

    def test_trace_export_requires_exactly_one_source(self, capsys):
        from repro.cli import main

        assert main(["trace", "export"]) == 2
        assert "span source" in capsys.readouterr().err

    def test_slo_rules_prints_prometheus_rules(self, capsys):
        from repro.cli import main

        assert main(["slo", "rules"]) == 0
        out = capsys.readouterr().out
        assert "groups:" in out and "P99JobLatencyBreach" in out

    def test_slo_check_against_live_service(self, traced_service, capsys):
        from repro.cli import main

        code = main(["slo", "check", "--url", traced_service.url, "--json"])
        out = json.loads(capsys.readouterr().out)
        assert code in (0, 1)
        assert out["breaches"] >= 0

    def test_slo_check_synthetic_breach_exits_nonzero(
        self, traced_service, capsys
    ):
        """Tightening warm_hit_ratio to an impossible 1.01 floor must
        flip the gate; prime store traffic first so the ratio has
        enough events to leave ``no_data``."""
        _prime_store()
        from repro.cli import main

        code = main([
            "slo", "check", "--url", traced_service.url,
            "--override", "warm_hit_ratio=1.01", "--json",
        ])
        document = json.loads(capsys.readouterr().out)
        by_name = {e["name"]: e for e in document["slos"]}
        if by_name["warm_hit_ratio"]["status"] == NO_DATA:
            pytest.skip("no store traffic reached the global registry")
        assert by_name["warm_hit_ratio"]["status"] == BREACH
        assert document["status"] == BREACH
        assert code == 1

    def test_slo_check_unknown_override_fails_cleanly(
        self, traced_service, capsys
    ):
        from repro.cli import main

        code = main([
            "slo", "check", "--url", traced_service.url,
            "--override", "not_an_slo=1",
        ])
        assert code == 2
        assert "unknown SLO" in capsys.readouterr().err


def _prime_store() -> None:
    """Drive >= min_events store lookups so warm_hit_ratio has data."""
    store = MemoryStore()
    for _ in range(6):
        store.get_or_compute("prime-a", lambda: ({"v": 1}, {}))
        store.get_or_compute("prime-b", lambda: ({"v": 2}, {}))
