"""Integrated ambient model (Eq. 3.6)."""

import pytest

from repro.params.thermal_params import INTEGRATED_AMBIENT, ISOLATED_AMBIENT
from repro.thermal.integrated import AmbientModel, CoreActivity, stable_ambient_c


def _activities(count=4, voltage=1.55, ipc=0.5):
    return [CoreActivity(voltage_v=voltage, reference_ipc=ipc) for _ in range(count)]


def test_stable_ambient_equation():
    # Eq. 3.6: inlet + interaction * sum(V * IPC).
    value = stable_ambient_c(INTEGRATED_AMBIENT, "AOHS_1.5", _activities())
    assert value == pytest.approx(45.0 + 1.5 * 4 * 1.55 * 0.5)


def test_isolated_model_ignores_cpu():
    model = AmbientModel(ISOLATED_AMBIENT, "AOHS_1.5")
    before = model.ambient_c
    model.step(_activities(ipc=2.0), 100.0)
    assert model.ambient_c == pytest.approx(before)
    assert model.ambient_c == pytest.approx(50.0)


def test_integrated_model_heats_with_activity():
    model = AmbientModel(INTEGRATED_AMBIENT, "AOHS_1.5")
    model.step(_activities(), 100.0)
    assert model.ambient_c > 45.0


def test_integrated_converges_to_stable():
    model = AmbientModel(INTEGRATED_AMBIENT, "AOHS_1.5")
    for _ in range(1000):
        model.step(_activities(), 1.0)
    expected = stable_ambient_c(INTEGRATED_AMBIENT, "AOHS_1.5", _activities())
    assert model.ambient_c == pytest.approx(expected, abs=0.01)


def test_tau_is_20_seconds():
    model = AmbientModel(INTEGRATED_AMBIENT, "AOHS_1.5")
    model.step(_activities(), 20.0)
    stable = stable_ambient_c(INTEGRATED_AMBIENT, "AOHS_1.5", _activities())
    progress = (model.ambient_c - 45.0) / (stable - 45.0)
    assert progress == pytest.approx(1 - 2.718281828 ** -1, abs=0.01)


def test_dvfs_reduces_heating():
    # Lower voltage and lower reference IPC both reduce the stable ambient.
    fast = stable_ambient_c(
        INTEGRATED_AMBIENT, "AOHS_1.5", _activities(voltage=1.55, ipc=0.5)
    )
    slow = stable_ambient_c(
        INTEGRATED_AMBIENT, "AOHS_1.5", _activities(voltage=1.15, ipc=0.3)
    )
    assert slow < fast


def test_gated_cores_do_not_heat():
    two = stable_ambient_c(INTEGRATED_AMBIENT, "AOHS_1.5", _activities(count=2))
    four = stable_ambient_c(INTEGRATED_AMBIENT, "AOHS_1.5", _activities(count=4))
    assert two < four


def test_step_heating_fast_path_matches_step():
    a = AmbientModel(INTEGRATED_AMBIENT, "AOHS_1.5")
    b = AmbientModel(INTEGRATED_AMBIENT, "AOHS_1.5")
    acts = _activities()
    heating = sum(x.voltage_v * x.reference_ipc for x in acts)
    for _ in range(50):
        a.step(acts, 1.0)
        b.step_heating(heating, 1.0)
    assert a.ambient_c == pytest.approx(b.ambient_c, rel=1e-12)


def test_reset_returns_to_inlet():
    model = AmbientModel(INTEGRATED_AMBIENT, "FDHS_1.0")
    model.step(_activities(), 100.0)
    model.reset()
    assert model.ambient_c == pytest.approx(40.0)


def test_interaction_degree_scales_heating():
    weak = INTEGRATED_AMBIENT.with_interaction(1.0)
    strong = INTEGRATED_AMBIENT.with_interaction(2.0)
    acts = _activities()
    t_weak = stable_ambient_c(weak, "AOHS_1.5", acts)
    t_strong = stable_ambient_c(strong, "AOHS_1.5", acts)
    rise_weak = t_weak - 45.0
    rise_strong = t_strong - 45.0
    assert rise_strong == pytest.approx(2.0 * rise_weak)
