"""Level-1 analytic window model."""

import pytest

from repro.core.windowmodel import MemoryEnvelope, WindowModel
from repro.errors import ConfigurationError
from repro.workloads.mixes import get_mix
from repro.workloads.profiles import get_app

F_MAX = 3.2e9


def _model(**kwargs) -> WindowModel:
    return WindowModel(**kwargs)


def test_memory_off_means_no_progress():
    model = _model()
    result = model.evaluate([get_app("swim")] * 4, F_MAX, memory_on=False)
    assert result.instructions_per_s == 0.0
    assert result.total_bytes_per_s == 0.0


def test_zero_cap_behaves_as_off():
    model = _model()
    result = model.evaluate([get_app("swim")], F_MAX, bandwidth_cap_bytes_per_s=0.0)
    assert result.instructions_per_s == 0.0


def test_solo_faster_than_shared_per_program():
    model = _model()
    solo = model.evaluate([get_app("swim")], F_MAX)
    shared = model.evaluate([get_app("swim")] * 4, F_MAX)
    assert solo.slots[0].instructions_per_s > shared.slots[0].instructions_per_s


def test_cap_limits_throughput():
    model = _model()
    capped = model.evaluate([get_app("swim")] * 4, F_MAX, bandwidth_cap_bytes_per_s=6.4e9)
    assert capped.total_bytes_per_s <= 6.4e9 * 1.01


def test_tighter_cap_means_less_throughput_and_progress():
    model = _model()
    apps = [get_app("swim")] * 4
    loose = model.evaluate(apps, F_MAX, bandwidth_cap_bytes_per_s=19.2e9)
    tight = model.evaluate(apps, F_MAX, bandwidth_cap_bytes_per_s=6.4e9)
    assert tight.total_bytes_per_s < loose.total_bytes_per_s
    assert tight.instructions_per_s < loose.instructions_per_s


def test_lower_frequency_reduces_traffic():
    """CDVFS effect: fewer speculative accesses at lower core speed."""
    model = _model()
    apps = get_mix("W1").apps
    fast = model.evaluate(apps, 3.2e9)
    slow = model.evaluate(apps, 1.6e9)
    assert slow.total_bytes_per_s < fast.total_bytes_per_s
    # Traffic *per instruction* also drops (the speculation surcharge).
    fast_per_instr = fast.total_bytes_per_s / fast.instructions_per_s
    slow_per_instr = slow.total_bytes_per_s / slow.instructions_per_s
    assert slow_per_instr < fast_per_instr


def test_fewer_cores_reduce_traffic_per_instruction():
    """ACG effect: two co-runners conflict less in the shared L2.

    Compare copies of the *same* program so the per-instruction traffic
    change isolates the cache-share effect.
    """
    model = _model()
    swim = get_app("swim")
    four = model.evaluate([swim] * 4, F_MAX)
    two = model.evaluate([swim] * 2, F_MAX)
    four_per_instr = four.total_bytes_per_s / four.instructions_per_s
    two_per_instr = two.total_bytes_per_s / two.instructions_per_s
    assert two_per_instr < four_per_instr


def test_high_mixes_demand_over_10gbps():
    """§4.3.2 calibration: the eight high-intensity programs exceed
    10 GB/s when four copies run."""
    model = _model()
    for name in ("swim", "mgrid", "applu", "galgel", "art", "equake", "lucas", "fma3d"):
        result = model.evaluate([get_app(name)] * 4, F_MAX)
        assert result.total_bytes_per_s > 10e9, name


def test_moderate_mixes_demand_5_to_10gbps():
    """§4.3.2 calibration: the four moderate programs sit in 5-10 GB/s."""
    model = _model()
    for name in ("wupwise", "vpr", "mcf", "apsi"):
        result = model.evaluate([get_app(name)] * 4, F_MAX)
        assert 4.0e9 < result.total_bytes_per_s < 11e9, name


def test_memoization_hits():
    model = _model()
    apps = get_mix("W1").apps
    model.evaluate(apps, F_MAX)
    entries = model.cache_entries
    model.evaluate(apps, F_MAX)
    assert model.cache_entries == entries


def test_memoized_result_respects_slot_order():
    model = _model()
    a, b = get_app("swim"), get_app("vpr")
    first = model.evaluate([a, b], F_MAX)
    second = model.evaluate([b, a], F_MAX)
    assert first.slots[0].app_name == "swim"
    assert second.slots[0].app_name == "vpr"
    assert first.total_bytes_per_s == pytest.approx(second.total_bytes_per_s)
    assert first.slots[0].instructions_per_s == pytest.approx(
        second.slots[1].instructions_per_s
    )


def test_utilization_bounded():
    model = _model()
    result = model.evaluate([get_app("swim")] * 4, F_MAX)
    assert 0.0 <= result.utilization <= 1.0


def test_latency_grows_with_load():
    model = _model()
    light = model.evaluate([get_app("vpr")], F_MAX)
    heavy = model.evaluate([get_app("swim")] * 4, F_MAX)
    assert heavy.latency_s > light.latency_s


def test_envelope_latency_curve():
    envelope = MemoryEnvelope()
    assert envelope.latency_s(0.0) == pytest.approx(envelope.idle_latency_s)
    assert envelope.latency_s(0.9) > envelope.latency_s(0.5) > envelope.latency_s(0.1)
    # Clamped at rho_max.
    assert envelope.latency_s(2.0) == envelope.latency_s(0.98)


def test_envelope_validation():
    with pytest.raises(ConfigurationError):
        MemoryEnvelope(idle_latency_s=0.0)
    with pytest.raises(ConfigurationError):
        MemoryEnvelope(rho_max=1.5)


def test_cache_override_changes_result():
    model = _model()
    apps = [get_app("galgel")] * 2
    small = model.evaluate(apps, F_MAX, cache_capacity_override_bytes=1024 * 1024)
    large = model.evaluate(apps, F_MAX, cache_capacity_override_bytes=16 * 1024 * 1024)
    assert small.l2_misses_per_s > large.l2_misses_per_s


def test_slot_results_aggregate_consistently():
    model = _model()
    result = model.evaluate(get_mix("W3").apps, F_MAX)
    assert result.read_bytes_per_s == pytest.approx(
        sum(s.read_bytes_per_s for s in result.slots)
    )
    assert result.l2_misses_per_s == pytest.approx(
        sum(s.l2_misses_per_s for s in result.slots)
    )


def test_clear_cache():
    model = _model()
    model.evaluate([get_app("swim")], F_MAX)
    model.clear_cache()
    assert model.cache_entries == 0
