"""The stepping engine: checkpoint/restore bit-identity, atomic
checkpoint files, observers, and the progress broker.

The acceptance property: for both simulators (ch4/ch5) under both
thermal kernels (batched/scalar), run K windows, checkpoint, restore
**in a fresh process**, finish — and the final result payload is
bit-identical (``==`` on the encoded dicts, no tolerance) to an
uninterrupted run.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.specs import (
    Chapter4Spec,
    Chapter5Spec,
    run_result_to_dict,
    server_result_to_dict,
)
from repro.campaign import NullStore, engine_for_spec, run
from repro.engine import (
    ENGINE_STATE_VERSION,
    CheckpointFile,
    CheckpointObserver,
    EngineState,
    PROGRESS,
    SteadyStateGuard,
)
from repro.errors import CheckpointError, ConfigurationError

SRC_DIR = Path(__file__).resolve().parent.parent / "src"

#: Shared construction of the acceptance engines, used both in-process
#: and by the fresh-interpreter restore driver.  Policies with internal
#: state (PID integrals, hysteresis latches) are the interesting cases.
_BUILD_ENGINE = """
def build_engine(kind, kernel):
    if kind == "ch4":
        from repro.analysis.specs import make_chapter4_policy
        from repro.core.simulator import SimulationConfig, TwoLevelSimulator

        config = SimulationConfig(
            mix_name="W1", copies=1, kernel=kernel, record_trace=True
        )
        policy = make_chapter4_policy("acg+pid")
        return TwoLevelSimulator(config, policy).engine()
    from repro.analysis.specs import make_chapter5_policy
    from repro.testbed.platforms import PLATFORMS
    from repro.testbed.runner import ServerSimulator

    platform = PLATFORMS["PE1950"]
    policy = make_chapter5_policy("comb", platform)
    return ServerSimulator(
        platform, policy, "W1", copies=1, kernel=kernel
    ).engine()
"""

exec(_BUILD_ENGINE)  # noqa: S102 - defines build_engine for this module


def _encode(spec, result) -> dict:
    if spec.kind == "ch4":
        return run_result_to_dict(result)
    return server_result_to_dict(result)


#: Driver executed in a *fresh* interpreter: rebuild the identically
#: configured engine, restore the checkpoint, finish, print the payload.
_RESTORE_DRIVER = (
    """
import json, sys
sys.path.insert(0, {src!r})
from repro.analysis.specs import run_result_to_dict, server_result_to_dict
from repro.engine import EngineState
"""
    + _BUILD_ENGINE
    + """
request = json.load(sys.stdin)
engine = build_engine(request["kind"], request["kernel"])
engine.restore(EngineState.from_dict(request["state"]))
result = engine.run_to_completion()
encode = run_result_to_dict if request["kind"] == "ch4" else server_result_to_dict
print(json.dumps(encode(result)))
"""
)


@pytest.mark.parametrize("kernel", ["batched", "scalar"])
@pytest.mark.parametrize("kind", ["ch4", "ch5"])
def test_checkpoint_restore_in_fresh_process_is_bit_identical(kind, kernel):
    """Run K windows -> checkpoint -> restore in a new interpreter ->
    finish == uninterrupted run, bitwise, for both simulators under
    both thermal kernels."""
    encode = run_result_to_dict if kind == "ch4" else server_result_to_dict
    baseline = encode(build_engine(kind, kernel).run_to_completion())  # noqa: F821

    engine = build_engine(kind, kernel)  # noqa: F821
    stepped = engine.step_windows(173)
    assert stepped == 173, "cells must be long enough to interrupt"
    state = engine.checkpoint().to_dict()

    request = {"kind": kind, "kernel": kernel, "state": state}
    proc = subprocess.run(
        [sys.executable, "-c", _RESTORE_DRIVER.format(src=str(SRC_DIR))],
        input=json.dumps(request),
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    resumed = json.loads(proc.stdout)
    # Exact equality after a JSON round trip — shortest-repr floats
    # round-trip bitwise, so this is the bit-identity check.
    assert resumed == json.loads(json.dumps(baseline))


def test_step_windows_then_completion_matches_straight_run():
    spec = Chapter4Spec(mix="W1", policy="ts", copies=1)
    straight = run(spec, store=NullStore())
    engine = engine_for_spec(spec)
    while engine.step_windows(97):
        pass
    assert engine.done
    assert _encode(spec, engine.finish()) == run_result_to_dict(straight)


def test_checkpoint_state_round_trips_and_rejects_foreign_major():
    spec = Chapter4Spec(mix="W1", policy="ts", copies=1)
    engine = engine_for_spec(spec)
    engine.step_windows(50)
    state = engine.checkpoint()
    rebuilt = EngineState.from_dict(json.loads(json.dumps(state.to_dict())))
    assert rebuilt == state
    assert state.version == ENGINE_STATE_VERSION

    foreign = state.to_dict()
    foreign["version"] = "99.0"
    with pytest.raises(CheckpointError, match="incompatible"):
        EngineState.from_dict(foreign)
    with pytest.raises(CheckpointError, match="malformed"):
        EngineState.from_dict({**state.to_dict(), "version": "nope"})


def test_restore_rejects_wrong_strategy_and_observer_mismatch():
    ch4 = engine_for_spec(Chapter4Spec(mix="W1", policy="ts", copies=1))
    ch4.step_windows(10)
    state = ch4.checkpoint()
    ch5 = engine_for_spec(
        Chapter5Spec(platform="PE1950", mix="W1", policy="bw", copies=1)
    )
    with pytest.raises(CheckpointError, match="strategy"):
        ch5.restore(state)

    extra = engine_for_spec(
        Chapter4Spec(mix="W1", policy="ts", copies=1),
        extra_observers=(SteadyStateGuard(),),
    )
    with pytest.raises(CheckpointError, match="observer"):
        extra.restore(state)


def test_engine_kinds_only_for_registered_factories():
    class FakeSpec:
        kind = "ch4"

        def key(self):
            return "x"

    with pytest.raises(ConfigurationError, match="resumable"):
        # Register-free kinds fail loudly through engine_for_spec.
        from repro.campaign.spec import Runner, _RUNNERS

        original = _RUNNERS["ch4"]
        try:
            _RUNNERS["ch4"] = Runner(
                kind="ch4",
                execute=original.execute,
                encode=original.encode,
                decode=original.decode,
                make_engine=None,
            )
            engine_for_spec(FakeSpec())
        finally:
            _RUNNERS["ch4"] = original


# ---------------------------------------------------------------------------
# Checkpoint files: atomicity, no partial leftovers
# ---------------------------------------------------------------------------


def test_checkpoint_file_write_is_atomic_and_cleans_tmp_on_failure(
    tmp_path, monkeypatch
):
    """An interrupted checkpoint write leaves the previous snapshot
    intact and no temp siblings — the JsonDirStore torn-write
    discipline applied to checkpoints."""
    spec = Chapter4Spec(mix="W1", policy="ts", copies=1)
    engine = engine_for_spec(spec)
    engine.step_windows(30)
    checkpoint = CheckpointFile(tmp_path / "cell.checkpoint.json")
    checkpoint.write(engine.checkpoint())
    good = checkpoint.load()

    engine.step_windows(30)
    import os

    real_write = os.write

    def failing_write(fd, data):
        # Simulate the process dying mid-write: the temp file exists
        # but only a torn prefix of the content lands.
        real_write(fd, b"{'torn':")
        raise KeyboardInterrupt

    monkeypatch.setattr("repro.engine.state.os.write", failing_write)
    with pytest.raises(KeyboardInterrupt):
        checkpoint.write(engine.checkpoint())
    monkeypatch.undo()

    leftovers = [p.name for p in tmp_path.iterdir()]
    assert leftovers == ["cell.checkpoint.json"], leftovers
    assert checkpoint.load() == good  # previous snapshot survived intact


def test_checkpoint_observer_writes_periodically_and_removes_on_finish(
    tmp_path,
):
    spec = Chapter4Spec(mix="W1", policy="ts", copies=1)
    path = tmp_path / "run.checkpoint.json"
    observer = CheckpointObserver(CheckpointFile(path), every_windows=50)
    engine = engine_for_spec(spec, extra_observers=(observer,))
    engine.step_windows(120)
    assert path.is_file()
    snapshot = CheckpointFile(path).load()
    assert snapshot.windows == 100  # last multiple of every_windows
    engine.run_to_completion()
    # A completed run leaves nothing to resume — and no temp files.
    assert list(tmp_path.iterdir()) == []


def test_checkpoint_observer_resume_roundtrip_via_file(tmp_path):
    spec = Chapter5Spec(platform="PE1950", mix="W1", policy="bw", copies=1)
    baseline = server_result_to_dict(engine_for_spec(spec).run_to_completion())

    path = tmp_path / "srv.checkpoint.json"
    observer = CheckpointObserver(CheckpointFile(path), every_windows=40)
    engine = engine_for_spec(spec, extra_observers=(observer,))
    engine.step_windows(95)  # abandon mid-run; file holds window 80

    resumed_engine = engine_for_spec(
        spec,
        extra_observers=(
            CheckpointObserver(CheckpointFile(path), every_windows=40),
        ),
    )
    resumed_engine.restore(CheckpointFile(path).load())
    assert resumed_engine.windows == 80
    result = resumed_engine.run_to_completion()
    assert server_result_to_dict(result) == baseline
    assert not path.exists()


# ---------------------------------------------------------------------------
# Observers: early stop, progress broker
# ---------------------------------------------------------------------------


def test_steady_state_guard_stops_long_runs_early():
    spec = Chapter4Spec(mix="W1", policy="no-limit", copies=2)
    full = engine_for_spec(spec)
    full_result = full.run_to_completion()

    guard = SteadyStateGuard(tolerance_c=5.0, window_span=50, min_windows=100)
    engine = engine_for_spec(spec, extra_observers=(guard,))
    result = engine.run_to_completion()
    assert guard.stopped
    assert engine.windows < full.windows
    assert result.runtime_s < full_result.runtime_s


def test_progress_broker_tracks_engine_runs():
    PROGRESS.clear()
    spec = Chapter4Spec(mix="W1", policy="ts", copies=1)
    key = spec.key()
    with PROGRESS.track(key):
        engine_for_spec(spec).run_to_completion()
    runs = PROGRESS.snapshot()
    assert key in runs
    final = runs[key]
    assert final["done"] is True
    assert final["strategy"] == "ch4"
    assert final["windows"] > 0
    assert final["finished_jobs"] == final["total_jobs"]
    # Filtered view returns just the requested run.
    assert PROGRESS.snapshot(key) == {key: final}
    assert PROGRESS.snapshot("missing") == {}
    PROGRESS.clear()


def test_untracked_runs_do_not_publish():
    PROGRESS.clear()
    engine_for_spec(Chapter4Spec(mix="W1", policy="ts", copies=1)).run_to_completion()
    assert PROGRESS.snapshot() == {}


def test_engine_state_error_paths(tmp_path):
    from repro.errors import SimulationError

    with pytest.raises(CheckpointError, match="JSON object"):
        EngineState.from_dict([1, 2])  # type: ignore[arg-type]
    with pytest.raises(CheckpointError, match="malformed engine state"):
        EngineState.from_dict({"version": ENGINE_STATE_VERSION})

    missing = CheckpointFile(tmp_path / "absent.json")
    assert not missing.exists()
    with pytest.raises(CheckpointError, match="cannot read"):
        missing.load()
    (tmp_path / "torn.json").write_text('{"version":')
    with pytest.raises(CheckpointError, match="not valid JSON"):
        CheckpointFile(tmp_path / "torn.json").load()
    missing.remove()  # idempotent on absent files

    engine = engine_for_spec(Chapter4Spec(mix="W1", policy="ts", copies=1))
    with pytest.raises(SimulationError, match="negative"):
        engine.step_windows(-1)
    engine.step_windows(5)
    state = engine.checkpoint()
    broken = state.to_dict()
    del broken["accumulators"]["peak_amb_c"]
    with pytest.raises(CheckpointError, match="missing accumulators"):
        engine.restore(EngineState.from_dict(broken))


def test_observer_defaults_and_validation(tmp_path):
    from repro.engine import Observer, ProgressObserver, TraceRecorder

    base = Observer()
    assert base.state_dict() == {}
    base.load_state_dict({})
    with pytest.raises(ValueError):
        ProgressObserver(every_windows=0)
    with pytest.raises(ValueError):
        CheckpointObserver(tmp_path / "x.json", every_windows=0)
    with pytest.raises(ValueError):
        SteadyStateGuard(window_span=0)
    # The recorder round-trips its pristine (never sampled) state.
    recorder = TraceRecorder(resolution_s=1.0)
    state = recorder.state_dict()
    assert state["since_s"] is None
    recorder.load_state_dict(state)
    assert recorder.state_dict() == state
