"""Exception hierarchy and result containers."""

import pytest

from repro import errors
from repro.core.results import RunResult, TemperatureTrace
from repro.errors import SimulationError


def test_all_errors_derive_from_repro_error():
    for name in (
        "ConfigurationError",
        "TimingViolationError",
        "ProtocolError",
        "SchedulingError",
        "ThermalModelError",
        "SimulationError",
        "WorkloadError",
    ):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_catching_base_catches_all():
    with pytest.raises(errors.ReproError):
        raise errors.TimingViolationError("tRCD")


def test_trace_append_and_window():
    trace = TemperatureTrace()
    for t in range(10):
        trace.append(float(t), 100.0 + t, 80.0, 50.0)
    assert len(trace) == 10
    sub = trace.window(2.0, 5.0)
    assert sub.times_s == [2.0, 3.0, 4.0]
    assert sub.amb_c == [102.0, 103.0, 104.0]


def test_trace_max_amb():
    trace = TemperatureTrace()
    trace.append(0.0, 105.0, 80.0, 50.0)
    trace.append(1.0, 110.0, 80.0, 50.0)
    assert trace.max_amb_c() == 110.0


def test_trace_max_amb_empty_raises():
    with pytest.raises(SimulationError):
        TemperatureTrace().max_amb_c()


def _result(**overrides) -> RunResult:
    defaults = dict(
        workload="W1",
        policy="DTM-TS",
        cooling="AOHS_1.5",
        runtime_s=100.0,
        traffic_bytes=1e12,
        l2_misses=1e9,
        instructions=1e12,
        cpu_energy_j=10_000.0,
        memory_energy_j=5_000.0,
        mean_ambient_c=50.0,
        peak_amb_c=110.0,
        peak_dram_c=80.0,
        shutdown_fraction=0.2,
        finished_jobs=8,
    )
    defaults.update(overrides)
    return RunResult(**defaults)


def test_average_powers():
    result = _result()
    assert result.average_cpu_power_w == pytest.approx(100.0)
    assert result.average_memory_power_w == pytest.approx(50.0)


def test_normalized_metrics():
    baseline = _result()
    other = _result(runtime_s=150.0, traffic_bytes=0.8e12)
    assert other.normalized_runtime(baseline) == pytest.approx(1.5)
    assert other.normalized_traffic(baseline) == pytest.approx(0.8)


def test_normalized_energy_channels():
    baseline = _result()
    other = _result(cpu_energy_j=5_000.0, memory_energy_j=5_000.0)
    assert other.normalized_energy(baseline, "cpu") == pytest.approx(0.5)
    assert other.normalized_energy(baseline, "memory") == pytest.approx(1.0)
    assert other.normalized_energy(baseline, "total") == pytest.approx(10_000 / 15_000)


def test_zero_baseline_rejected():
    baseline = _result(runtime_s=0.0)
    with pytest.raises(SimulationError):
        _result().normalized_runtime(baseline)
