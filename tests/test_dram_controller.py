"""Memory controller scheduling, latency and throttling."""

import pytest

from repro.dram.address import AddressMapper
from repro.dram.commands import MemoryRequest, RequestKind
from repro.dram.controller import ActivationThrottle, ChannelController
from repro.dram.trafficgen import stream_trace
from repro.errors import ConfigurationError


def _controller(**kwargs) -> ChannelController:
    return ChannelController(dimms=4, banks_per_dimm=8, **kwargs)


def _decode_factory():
    mapper = AddressMapper(channels=1, dimms_per_channel=4, banks_per_dimm=8)
    return mapper.decode


def test_single_read_latency_breakdown():
    controller = _controller()
    decode = _decode_factory()
    request = MemoryRequest(RequestKind.READ, address=0, arrival_s=0.0)
    [completed] = controller.run([request], decode)
    # Must include controller overhead (12 ns) + frame + tRCD + tCL +
    # burst + northbound return; comfortably between 45 and 120 ns.
    assert 45e-9 < completed.latency_s < 120e-9


def test_write_completes_without_northbound():
    controller = _controller()
    decode = _decode_factory()
    request = MemoryRequest(RequestKind.WRITE, address=0, arrival_s=0.0)
    [completed] = controller.run([request], decode)
    assert controller.channel.northbound.frames_sent == 0
    assert controller.channel.southbound.frames_sent == 2
    assert completed.latency_s > 0


def test_far_dimm_has_longer_latency():
    """Variable read latency: DIMM 3 pays six extra AMB hops."""
    controller = _controller()
    decode = _decode_factory()
    near = MemoryRequest(RequestKind.READ, address=0, arrival_s=0.0)  # dimm 0
    [done_near] = controller.run([near], decode)
    controller.reset()
    far = MemoryRequest(RequestKind.READ, address=3 * 64, arrival_s=0.0)  # dimm 3
    [done_far] = controller.run([far], decode)
    assert done_far.latency_s > done_near.latency_s


def test_stream_throughput_near_channel_peak():
    controller = _controller()
    decode = _decode_factory()
    requests = stream_trace(count=2000, interarrival_s=0.0)
    controller.run(requests, decode)
    throughput = controller.stats.throughput_gbps()
    # One channel's northbound peak is ~5.33 GB/s; the close-page
    # pipeline across 4 DIMMs x 8 banks should come close.
    assert throughput > 4.0
    assert throughput <= 5.4


def test_bank_conflict_stream_is_slow():
    controller = _controller()
    mapper = AddressMapper(channels=1, dimms_per_channel=4, banks_per_dimm=8)
    # Same bank, new row every time: one access per tRC at best.
    stride = 4 * 8 * 128 * 64  # dimms * banks * columns * line
    requests = [
        MemoryRequest(RequestKind.READ, address=i * stride, arrival_s=0.0)
        for i in range(200)
    ]
    controller.run(requests, mapper.decode)
    throughput = controller.stats.throughput_gbps()
    # 32 B / 54 ns = 0.59 GB/s upper bound for one bank.
    assert throughput < 0.7


def test_amb_traffic_split_along_chain():
    controller = _controller()
    decode = _decode_factory()
    requests = stream_trace(count=400, interarrival_s=10e-9)
    controller.run(requests, decode)
    ambs = controller.ambs
    # Uniform interleaving: every AMB gets the same local traffic.
    locals_ = [a.traffic.local_bytes for a in ambs]
    assert max(locals_) == min(locals_)
    # Bypass decreases along the chain; last AMB sees none.
    bypasses = [a.traffic.bypass_bytes for a in ambs]
    assert bypasses[0] > bypasses[1] > bypasses[2] > bypasses[3]
    assert bypasses[3] == 0


def test_activation_throttle_caps_throughput():
    window_s = 0.066
    controller = _controller(
        activation_cap_per_window=1000, throttle_window_s=window_s
    )
    decode = _decode_factory()
    requests = stream_trace(count=3000, interarrival_s=0.0)
    completed = controller.run(requests, decode)
    # No window may carry more than the programmed activation count.
    per_window: dict[int, int] = {}
    for done in completed:
        index = int(done.activate_s // window_s)
        per_window[index] = per_window.get(index, 0) + 1
    assert max(per_window.values()) <= 1000
    # And the cap actually spreads the burst over multiple windows.
    assert len(per_window) == 3


def test_throttle_earliest_allowed_defers_to_next_window():
    throttle = ActivationThrottle(max_activations=2, window_s=1.0)
    assert throttle.earliest_allowed(0.1) == 0.1
    throttle.record(0.1)
    throttle.record(0.2)
    assert throttle.earliest_allowed(0.3) == 1.0  # cap reached
    throttle.record(1.0)
    assert throttle.earliest_allowed(1.1) == 1.1  # new window


def test_throttle_disabled_by_none():
    throttle = ActivationThrottle(max_activations=None)
    assert not throttle.enabled
    assert throttle.earliest_allowed(5.0) == 5.0


def test_throttle_validation():
    with pytest.raises(ConfigurationError):
        ActivationThrottle(max_activations=0)
    with pytest.raises(ConfigurationError):
        ActivationThrottle(max_activations=10, window_s=0.0)


def test_completions_sorted_by_time():
    controller = _controller()
    decode = _decode_factory()
    requests = stream_trace(count=100, interarrival_s=1e-9)
    completed = controller.run(requests, decode)
    times = [c.completion_s for c in completed]
    assert times == sorted(times)


def test_stats_percentiles():
    controller = _controller()
    decode = _decode_factory()
    requests = stream_trace(count=500, interarrival_s=0.0)
    controller.run(requests, decode)
    p50 = controller.stats.percentile_latency_s(0.5)
    p99 = controller.stats.percentile_latency_s(0.99)
    assert p99 >= p50 > 0


def test_reset_clears_everything():
    controller = _controller()
    decode = _decode_factory()
    controller.run(stream_trace(count=10), decode)
    controller.reset()
    assert controller.stats.total_requests == 0
    assert controller.ambs[0].traffic.local_bytes == 0
