"""The ``repro.analysis.experiments`` → ``repro.analysis.specs`` shim.

The old import path must keep working (symbols re-exported intact) and
must warn about its deprecation exactly once — on first import, never
again on cached re-imports.
"""

from __future__ import annotations

import importlib
import sys
import warnings

import pytest


def _fresh_import():
    sys.modules.pop("repro.analysis.experiments", None)
    return importlib.import_module("repro.analysis.experiments")


def test_shim_warns_exactly_once_on_first_import():
    with pytest.warns(DeprecationWarning) as records:
        _fresh_import()
    matching = [
        record for record in records
        if "repro.analysis.experiments is deprecated" in str(record.message)
    ]
    assert len(matching) == 1
    # The message points at both migration targets.
    message = str(matching[0].message)
    assert "repro.api" in message and "repro.analysis.specs" in message


def test_shim_cached_reimport_does_not_warn_again():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        _fresh_import()  # ensure the module is in sys.modules
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        importlib.import_module("repro.analysis.experiments")


def test_shim_reexports_every_specs_symbol_intact():
    specs = importlib.import_module("repro.analysis.specs")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        shim = _fresh_import()
    assert list(shim.__all__) == list(specs.__all__)
    for name in specs.__all__:
        assert getattr(shim, name) is getattr(specs, name), name
    # The shimmed spec classes are the real ones: same runner registry,
    # same cache keys.
    assert shim.Chapter4Spec(copies=1).key() == specs.Chapter4Spec(copies=1).key()
