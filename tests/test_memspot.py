"""MEMSpot: the level-2 power/thermal emulator."""

import pytest

from repro.core.memspot import MemSpot
from repro.errors import ConfigurationError
from repro.params.thermal_params import (
    AOHS_1_5,
    FDHS_1_0,
    INTEGRATED_AMBIENT,
    ISOLATED_AMBIENT,
)
from repro.thermal.isolated import stable_temperatures
from repro.units import gbps


def _memspot(**kwargs) -> MemSpot:
    defaults = dict(cooling=AOHS_1_5, ambient=ISOLATED_AMBIENT)
    defaults.update(kwargs)
    return MemSpot(**defaults)


def test_warm_start_at_idle_stable():
    spot = _memspot()
    sample = spot.sample()
    # AOHS_1.5, inlet 50 degC, idle AMB power 5.1 W (nearest DIMM),
    # idle DRAM 0.98 W: Eq. 3.3 gives ~100.7 degC.
    expected = stable_temperatures(50.0, 5.1, 0.98, AOHS_1_5)
    assert sample.amb_c == pytest.approx(expected.amb_c)
    assert sample.dram_c == pytest.approx(expected.dram_c)


def test_cold_start_option():
    spot = _memspot(warm_start=False)
    assert spot.sample().amb_c == pytest.approx(50.0)


def test_idle_power_accounting():
    spot = _memspot()
    # 4 channels x (3 x 5.1 + 4.0 AMB idle + 4 x 0.98 DRAM static).
    expected = 4 * (3 * 5.1 + 4.0 + 4 * 0.98)
    assert spot.idle_power_w() == pytest.approx(expected)


def test_traffic_heats_the_dimms():
    spot = _memspot()
    start = spot.sample().amb_c
    for _ in range(100):
        sample = spot.step(gbps(15.0), gbps(4.0), 0.0, 1.0)
    assert sample.amb_c > start


def test_zero_traffic_stays_at_idle_stable():
    spot = _memspot()
    start = spot.sample().amb_c
    sample = spot.step(0.0, 0.0, 0.0, 10.0)
    assert sample.amb_c == pytest.approx(start, abs=0.01)


def test_memory_power_includes_all_channels():
    spot = _memspot()
    sample = spot.step(gbps(16.0), gbps(4.0), 0.0, 1.0)
    # Eq. 3.1 + 3.2 across 16 DIMMs: idle + dynamic.
    assert sample.memory_power_w > spot.idle_power_w()


def test_hottest_dimm_is_position_zero():
    spot = _memspot()
    for _ in range(50):
        spot.step(gbps(16.0), gbps(4.0), 0.0, 1.0)
    temps = [m.temperatures.amb_c for m in spot.dimm_models]
    assert temps[0] == max(temps)
    assert temps[0] > temps[-1]


def test_integrated_ambient_follows_cpu():
    spot = _memspot(ambient=INTEGRATED_AMBIENT)
    inlet = spot.ambient_model.inlet_c
    sample = None
    for _ in range(100):
        sample = spot.step(0.0, 0.0, 4 * 1.55 * 0.5, 1.0)
    assert sample.ambient_c > inlet


def test_isolated_ambient_ignores_cpu():
    spot = _memspot()
    sample = spot.step(0.0, 0.0, 100.0, 10.0)
    assert sample.ambient_c == pytest.approx(50.0)


def test_fdhs_dram_gets_hotter_relative_to_limit():
    """Under FDHS_1.0 the DRAM reaches its 85 degC limit before the AMB
    reaches 110 degC; under AOHS_1.5 the AMB binds first (§4.4.1)."""
    load = dict(read_bytes_per_s=gbps(14.0), write_bytes_per_s=gbps(4.0))
    fdhs = MemSpot(FDHS_1_0, ISOLATED_AMBIENT)
    aohs = MemSpot(AOHS_1_5, ISOLATED_AMBIENT)
    for _ in range(600):
        f = fdhs.step(cpu_heating_sum=0.0, dt_s=1.0, **load)
        a = aohs.step(cpu_heating_sum=0.0, dt_s=1.0, **load)
    assert (85.0 - f.dram_c) < (110.0 - f.amb_c)
    assert (110.0 - a.amb_c) < (85.0 - a.dram_c)


def test_reset_restores_warm_start():
    spot = _memspot()
    start = spot.sample().amb_c
    for _ in range(50):
        spot.step(gbps(16.0), gbps(4.0), 0.0, 1.0)
    spot.reset()
    assert spot.sample().amb_c == pytest.approx(start)


def test_validation():
    with pytest.raises(ConfigurationError):
        MemSpot(AOHS_1_5, ISOLATED_AMBIENT, physical_channels=0)
