"""CPU substrate: DVFS ladder, core gating, chip facade, power."""

import pytest

from repro.cpu.dvfs import DVFSLadder
from repro.cpu.gating import CoreGating
from repro.cpu.multicore import MulticoreChip
from repro.cpu.power import measured_chip_power_w, simulated_chip_power_w
from repro.errors import ConfigurationError
from repro.params.power_params import SIMULATED_CPU_POWER


def _ladder() -> DVFSLadder:
    return DVFSLadder(SIMULATED_CPU_POWER.operating_points)


def test_ladder_starts_at_top():
    ladder = _ladder()
    assert ladder.level == 0
    assert ladder.frequency_hz == 3.2e9
    assert ladder.voltage_v == 1.55


def test_ladder_walk():
    ladder = _ladder()
    ladder.set_level(2)
    assert ladder.frequency_hz == 1.6e9
    assert ladder.frequency_scale == pytest.approx(0.5)


def test_ladder_stopped_state():
    ladder = _ladder()
    ladder.set_level(ladder.stopped_level)
    assert ladder.is_stopped
    assert ladder.frequency_hz == 0.0
    assert ladder.voltage_v == 0.0


def test_ladder_rejects_bad_level():
    with pytest.raises(ConfigurationError):
        _ladder().set_level(9)


def test_ladder_requires_descending_points():
    points = tuple(reversed(SIMULATED_CPU_POWER.operating_points))
    with pytest.raises(ConfigurationError):
        DVFSLadder(points)


def test_gating_all_active_initially():
    gating = CoreGating(4)
    assert gating.active_cores() == [0, 1, 2, 3]


def test_gating_reduces_count():
    gating = CoreGating(4)
    gating.set_active_count(2)
    assert len(gating.active_cores()) == 2


def test_gating_rotation_changes_victims():
    gating = CoreGating(4)
    gating.set_active_count(2)
    first = gating.active_cores()
    gating.rotate()
    second = gating.active_cores()
    assert first != second


def test_gating_rotation_covers_all_cores():
    """Round-robin fairness: over a full rotation cycle every core gets
    gated at some point (§4.2.2)."""
    gating = CoreGating(4)
    gating.set_active_count(3)
    gated_at_some_point = set()
    for _ in range(8):
        active = set(gating.active_cores())
        gated_at_some_point |= set(range(4)) - active
        gating.rotate()
    assert gated_at_some_point == {0, 1, 2, 3}


def test_protected_core_never_gated():
    gating = CoreGating(4, protected_cores=frozenset({0}))
    gating.set_active_count(1)
    for _ in range(8):
        assert 0 in gating.active_cores()
        gating.rotate()


def test_protected_clamps_minimum():
    gating = CoreGating(4, protected_cores=frozenset({0, 2}))
    gating.set_active_count(1)
    assert gating.active_count == 2


def test_zero_active_allowed_without_protection():
    gating = CoreGating(4)
    gating.set_active_count(0)
    assert gating.active_cores() == []


def test_gating_validation():
    with pytest.raises(ConfigurationError):
        CoreGating(0)
    with pytest.raises(ConfigurationError):
        CoreGating(2, protected_cores=frozenset({5}))
    with pytest.raises(ConfigurationError):
        CoreGating(4).set_active_count(5)


def test_chip_running_cores_respect_dvfs_stop():
    chip = MulticoreChip(4, SIMULATED_CPU_POWER.operating_points)
    chip.dvfs.set_level(chip.dvfs.stopped_level)
    assert chip.running_cores == []


def test_chip_memory_toggle():
    chip = MulticoreChip(4, SIMULATED_CPU_POWER.operating_points)
    chip.set_memory_on(False)
    assert not chip.memory_on
    chip.reset()
    assert chip.memory_on
    assert chip.running_cores == [0, 1, 2, 3]


def test_simulated_power_ts_states():
    # DTM-TS: 260 W running, 62 W with memory off (Table 4.4).
    assert simulated_chip_power_w(4, 0, memory_on=True) == pytest.approx(260.0)
    assert simulated_chip_power_w(4, 0, memory_on=False) == pytest.approx(62.0)


def test_simulated_power_acg_states():
    for cores, expected in ((0, 62.0), (1, 111.5), (2, 161.0), (3, 210.5), (4, 260.0)):
        assert simulated_chip_power_w(cores, 0, True) == pytest.approx(expected)


def test_simulated_power_cdvfs_states():
    for level, expected in ((0, 260.0), (1, 193.4), (2, 116.5), (3, 80.6), (4, 62.0)):
        assert simulated_chip_power_w(4, level, True) == pytest.approx(expected)


def test_simulated_power_comb_composition():
    # 2 active cores at DVFS level 2: standby + 2 * per-core dynamic.
    expected = 62.0 + 2 * (116.5 - 62.0) / 4
    assert simulated_chip_power_w(2, 2, True) == pytest.approx(expected)


def test_simulated_power_validation():
    with pytest.raises(ConfigurationError):
        simulated_chip_power_w(7, 0, True)


def test_measured_power_monotone_in_utilization():
    low = measured_chip_power_w([0.1] * 4, 0)
    high = measured_chip_power_w([0.9] * 4, 0)
    assert high > low
