"""FBDIMM channel links and AMB behaviour."""

import pytest

from repro.dram.amb import AMB
from repro.dram.channel import FBDIMMChannel, FrameLink
from repro.errors import ConfigurationError
from repro.params.dram_timing import DDR2Timing, FBDIMMChannelParams
from repro.units import ns_to_s

TIMING = DDR2Timing()
PARAMS = FBDIMMChannelParams()


def test_frame_link_serializes():
    link = FrameLink(frame_period_s=6e-9)
    first = link.book(0.0)
    second = link.book(0.0)
    assert first == 0.0
    assert second == pytest.approx(6e-9)


def test_frame_link_respects_earliest():
    link = FrameLink(frame_period_s=6e-9)
    start = link.book(100e-9)
    assert start == pytest.approx(100e-9)


def test_frame_link_multi_frame_booking():
    link = FrameLink(frame_period_s=6e-9)
    link.book(0.0, frames=2)
    assert link.next_free_s == pytest.approx(12e-9)
    assert link.frames_sent == 2


def test_frame_link_utilization():
    link = FrameLink(frame_period_s=6e-9)
    link.book(0.0, frames=10)
    assert link.utilization(120e-9) == pytest.approx(0.5)


def test_channel_write_needs_two_frames():
    channel = FBDIMMChannel(TIMING, PARAMS)
    channel.send_write(0.0, payload_bytes=32)
    assert channel.southbound.frames_sent == 2  # 16 B per frame


def test_channel_read_return_one_frame():
    channel = FBDIMMChannel(TIMING, PARAMS)
    end = channel.return_read(0.0, payload_bytes=32)
    assert channel.northbound.frames_sent == 1
    assert end == pytest.approx(channel.northbound.frame_period_s)


def test_command_frame_single():
    channel = FBDIMMChannel(TIMING, PARAMS)
    channel.send_command(0.0)
    assert channel.southbound.frames_sent == 1


def test_northbound_peak_matches_ddr2():
    channel = FBDIMMChannel(TIMING, PARAMS)
    period = channel.northbound.frame_period_s
    assert 32 / period == pytest.approx(667e6 * 8, rel=1e-3)


def test_amb_southbound_delay_grows_with_position():
    near = AMB(0, 8, PARAMS)
    far = AMB(7, 8, PARAMS)
    assert far.southbound_delay_s() > near.southbound_delay_s()
    hops = 7 * ns_to_s(PARAMS.amb_hop_ns)
    assert far.southbound_delay_s() - near.southbound_delay_s() == pytest.approx(hops)


def test_variable_read_latency():
    near = AMB(0, 8, PARAMS)
    far = AMB(7, 8, PARAMS)
    assert near.northbound_delay_s() < far.northbound_delay_s()


def test_fixed_read_latency_when_vrl_off():
    params = FBDIMMChannelParams(variable_read_latency=False)
    near = AMB(0, 8, params)
    far = AMB(7, 8, params)
    assert near.northbound_delay_s() == far.northbound_delay_s()
    assert near.northbound_delay_s() == pytest.approx(7 * ns_to_s(params.amb_hop_ns))


def test_amb_traffic_accounting():
    amb = AMB(1, 4, PARAMS)
    amb.record_local(32, is_write=False)
    amb.record_local(32, is_write=True)
    amb.record_bypass(64, is_write=False)
    assert amb.traffic.local_read_bytes == 32
    assert amb.traffic.local_write_bytes == 32
    assert amb.traffic.bypass_read_bytes == 64
    assert amb.traffic.local_bytes == 64
    assert amb.traffic.bypass_bytes == 64


def test_amb_is_last_flag():
    assert AMB(3, 4, PARAMS).is_last
    assert not AMB(2, 4, PARAMS).is_last


def test_amb_reset_traffic():
    amb = AMB(0, 4, PARAMS)
    amb.record_local(32, is_write=False)
    amb.reset_traffic()
    assert amb.traffic.local_bytes == 0


def test_link_validation():
    with pytest.raises(ConfigurationError):
        FrameLink(frame_period_s=0.0)
    link = FrameLink(6e-9)
    with pytest.raises(ConfigurationError):
        link.book(0.0, frames=0)
    channel = FBDIMMChannel(TIMING, PARAMS)
    with pytest.raises(ConfigurationError):
        channel.send_write(0.0, payload_bytes=0)
