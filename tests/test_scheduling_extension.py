"""Cache-aware job scheduling extension (§6 future work)."""

import pytest

from repro.errors import SchedulingError
from repro.workloads.batch import BatchScheduler
from repro.workloads.mixes import get_mix
from repro.workloads.profiles import get_app
from repro.workloads.scheduling import CacheAwareScheduler, predicted_miss_rate

MB = 1024 * 1024


def test_predicted_miss_rate_empty():
    assert predicted_miss_rate([], 4 * MB) == 0.0


def test_predicted_miss_rate_monotone_in_corunners():
    swim = get_app("swim")
    one = predicted_miss_rate([swim], 4 * MB)
    four = predicted_miss_rate([swim] * 4, 4 * MB)
    assert four > one


def test_predicted_rate_prefers_mixed_pairs():
    """Two cache-hungry programs together predict a worse rate than a
    hungry/friendly pair — the signal the scheduler exploits."""
    art = get_app("art")          # cache-sensitive, hungry
    crafty = get_app("crafty")    # small working set
    both_hungry = predicted_miss_rate([art, art], 4 * MB)
    mixed = predicted_miss_rate([art, crafty], 4 * MB)
    assert mixed < both_hungry


def test_cache_aware_scheduler_is_a_batch_scheduler():
    scheduler = CacheAwareScheduler(get_mix("W1"), copies=2, cores=4)
    assert isinstance(scheduler, BatchScheduler)
    assert scheduler.total_jobs == 8
    assert len(scheduler.occupied_slots()) == 4


def test_cache_aware_refill_completes_batch():
    scheduler = CacheAwareScheduler(get_mix("W5"), copies=2, cores=4)
    guard = 0
    while not scheduler.done:
        progress = {
            slot: scheduler.job_at(slot).remaining_instructions
            for slot in scheduler.occupied_slots()
        }
        scheduler.advance(progress)
        guard += 1
        assert guard < 100
    assert scheduler.finished_jobs == 8


def test_cache_aware_refill_picks_low_contention_job():
    """Free one slot of a hungry trio; the scheduler should prefer the
    friendliest waiting app over the hungriest."""
    scheduler = CacheAwareScheduler(get_mix("W5"), copies=2, cores=4)
    # W5 = swim, art, wupwise, vpr.  Finish vpr (slot 3): waiting queue
    # holds copy #1 of all four apps; the refill should not pick art
    # (the hungriest) to join swim+art+wupwise.
    job = scheduler.job_at(3)
    assert job.app.name == "vpr"
    scheduler.advance({3: job.remaining_instructions})
    refilled = scheduler.job_at(3)
    assert refilled is not None
    assert refilled.app.name != "art"


def test_cache_aware_validation():
    with pytest.raises(SchedulingError):
        CacheAwareScheduler(get_mix("W1"), copies=1, cores=4, cache_capacity_bytes=0)
