"""Table 4.1 timing parameters."""

import pytest

from repro.errors import ConfigurationError
from repro.params.dram_timing import DDR2Timing, FBDIMMChannelParams, SimulatedSystemParams


def test_default_timing_is_555():
    t = DDR2Timing()
    assert t.trcd_ns == 15.0
    assert t.tcl_ns == 15.0
    assert t.trp_ns == 15.0


def test_secondary_timings_match_table_4_1():
    t = DDR2Timing()
    assert (t.tras_ns, t.trc_ns, t.twtr_ns, t.twl_ns) == (39.0, 54.0, 9.0, 12.0)
    assert (t.twpd_ns, t.trpd_ns, t.trrd_ns) == (36.0, 9.0, 9.0)


def test_clock_period_667():
    assert DDR2Timing().clock_period_ns == pytest.approx(2000.0 / 667.0)


def test_burst_duration_is_two_clocks():
    t = DDR2Timing()
    # Burst of 4 at DDR = 2 bus clocks.
    assert t.burst_duration_ns == pytest.approx(2 * t.clock_period_ns)


def test_in_cycles_rounds_up():
    t = DDR2Timing()
    assert t.in_cycles(15.0) == 6  # 15 / 2.999 -> 5.003 -> 6
    assert t.in_cycles(0.0) == 0


def test_trc_must_cover_tras():
    with pytest.raises(ConfigurationError):
        DDR2Timing(tras_ns=60.0, trc_ns=54.0)


def test_northbound_matches_ddr2_channel():
    t = DDR2Timing()
    c = FBDIMMChannelParams()
    # §3.2: the northbound link matches one DDR2 channel: 667 MT * 8 B.
    assert c.northbound_peak_bytes_per_s(t) == pytest.approx(667e6 * 8, rel=1e-3)


def test_southbound_is_half_northbound():
    t = DDR2Timing()
    c = FBDIMMChannelParams()
    ratio = c.southbound_peak_bytes_per_s(t) / c.northbound_peak_bytes_per_s(t)
    assert ratio == pytest.approx(0.5)


def test_system_peak_bandwidth_about_21gbps():
    # §2.2: "peak memory bandwidth of 21 GB/s".
    params = SimulatedSystemParams()
    assert params.peak_read_bandwidth_bytes_per_s == pytest.approx(21.3e9, rel=0.02)


def test_system_dimm_count():
    assert SimulatedSystemParams().total_dimms == 16


def test_system_rejects_mismatched_channels():
    with pytest.raises(ConfigurationError):
        SimulatedSystemParams(logical_channels=3, physical_channels=4)


def test_dtm_interval_defaults():
    params = SimulatedSystemParams()
    assert params.dtm_interval_s == pytest.approx(0.010)
    assert params.dtm_overhead_s == pytest.approx(25e-6)
