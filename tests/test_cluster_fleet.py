"""Fleet integration: real worker subprocesses driven over HTTP.

These tests boot actual ``python -m repro worker`` processes through
:class:`LocalFleet` and exercise the acceptance criteria end to end:

- a grid run through :class:`HttpWorkerBackend` is byte-identical to
  the :class:`SerialBackend` run of the same grid, and the coordinator
  merges worker payloads into the shared store so a follow-up local
  run is all cache hits;
- killing a worker mid-grid loses no cells — the coordinator requeues
  onto the survivors and the grid completes with correct results;
- with time-sliced dispatch, a worker killed mid-cell resumes the cell
  from its last returned checkpoint (not from zero), and the results
  stay identical to a serial run.
"""

from __future__ import annotations

import json
import tempfile
import time

import pytest

from repro.analysis.specs import CHAPTER4_POLICIES, Chapter4Spec
from repro.api import ReproClient, ScenarioRequest, results_document
from repro.api.envelope import dumps_canonical
from repro.campaign import Campaign, MemoryStore
from repro.cli import main
from repro.cluster import HttpWorkerBackend, LocalFleet
from repro.errors import ClusterError

#: The acceptance grid: two library scenarios, one copy each.
SCENARIO_NAMES = ("hot-ambient", "cold-aisle")


def _scenario_request() -> ScenarioRequest:
    return ScenarioRequest(names=SCENARIO_NAMES, copies=1)


@pytest.fixture(scope="module")
def fleet():
    """Two real workers sharing a private (initially cold) disk cache."""
    with tempfile.TemporaryDirectory(prefix="repro-worker-cache-") as cache:
        with LocalFleet(2, env={"REPRO_CACHE_DIR": cache}) as running:
            yield running


def test_fleet_not_started_has_no_urls():
    with pytest.raises(ClusterError, match="not running"):
        LocalFleet(1).urls


def test_fleet_byte_identity_and_shared_store_warm_through(fleet):
    """The acceptance check: fleet == serial, and the store warms through."""
    serial_store = MemoryStore()
    serial_client = ReproClient(store=serial_store)
    serial_cold = list(serial_client.run_scenarios(_scenario_request()))

    fleet_store = MemoryStore()
    with HttpWorkerBackend(fleet.urls) as backend:
        fleet_client = ReproClient(store=fleet_store, backend=backend)
        fleet_cold = list(fleet_client.run_scenarios(_scenario_request()))
        fleet_warm = list(fleet_client.run_scenarios(_scenario_request()))

    # Distributed compute produced the same cells as local compute —
    # identical in everything but where/when the work happened.
    assert len(fleet_cold) == len(serial_cold) == len(SCENARIO_NAMES)
    for fleet_env, serial_env in zip(fleet_cold, serial_cold):
        fleet_doc, serial_doc = fleet_env.to_dict(), serial_env.to_dict()
        for doc in (fleet_doc, serial_doc):
            doc["provenance"].pop("compute_seconds")
            doc["provenance"].pop("cache")
        assert fleet_doc == serial_doc

    # Byte identity on warm envelopes, where provenance is fully
    # deterministic (cache=hit, compute_seconds=0.0): the fleet pass
    # and the serial pass serialize to the same canonical JSON.
    serial_warm = list(serial_client.run_scenarios(_scenario_request()))
    assert all(e.provenance.cache == "hit" for e in fleet_warm)
    assert dumps_canonical(results_document(fleet_warm)) == dumps_canonical(
        results_document(serial_warm)
    )

    # Warm-through: the coordinator merged worker payloads into its
    # store, so a purely local follow-up run over that store is all
    # cache hits — and byte-identical to the serial warm pass too.
    local = list(
        ReproClient(store=fleet_store).run_scenarios(_scenario_request())
    )
    assert all(
        e.provenance.cache == "hit" and e.provenance.compute_seconds == 0.0
        for e in local
    )
    assert dumps_canonical(results_document(local)) == dumps_canonical(
        results_document(serial_warm)
    )


def test_cli_campaign_http_backend(fleet, capsys):
    code = main([
        "campaign", "--grid", "ch4", "--mixes", "W2", "--policies", "ts,bw",
        "--copies", "1", "--backend", "http",
        "--workers", ",".join(fleet.urls), "--json",
    ])
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    policies = [r["metrics"]["policy"] for r in document["results"]]
    assert policies == ["DTM-TS", "DTM-BW"]


def test_cli_workers_without_http_backend_is_an_error(capsys):
    code = main([
        "campaign", "--grid", "ch4", "--mixes", "W1", "--policies", "ts",
        "--workers", "127.0.0.1:9001",
    ])
    assert code == 2
    assert "--backend http" in capsys.readouterr().err


def test_worker_killed_mid_cell_resumes_from_checkpoint(tmp_path):
    """Acceptance: with time-sliced dispatch, killing a worker mid-cell
    must resume the cell from its last checkpoint, not restart it."""
    specs = [
        Chapter4Spec(mix="W1", policy=policy, copies=2)
        for policy in ("ts", "acg")
    ]
    with LocalFleet(
        2, env={"REPRO_CACHE_DIR": str(tmp_path / "worker-cache")}
    ) as fleet:
        backend = HttpWorkerBackend(
            fleet.urls,
            window_slice=400,
            heartbeat_interval_s=0.5,
            health_timeout_s=1.0,
            blacklist_after=2,
        )
        with backend:
            import threading

            results: list = []

            def consume() -> None:
                campaign = Campaign(specs, store=MemoryStore(), backend=backend)
                for _, result, _, _ in campaign.iter_run():
                    results.append(result)

            consumer = threading.Thread(target=consume, daemon=True)
            consumer.start()
            # Let both cells accumulate at least one checkpoint each
            # before taking a machine away.
            deadline = time.monotonic() + 60
            while (
                backend.dispatch_stats()["partial_slices"] < 4
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            assert backend.dispatch_stats()["partial_slices"] >= 4
            fleet.kill(1)  # SIGKILL mid-slice
            consumer.join(timeout=180)
            assert not consumer.is_alive(), "grid did not finish after the kill"
            stats = backend.dispatch_stats()
    # Every cell completed, each in several slices, and each finished
    # from a warm checkpoint — no cell restarted from window zero.
    assert len(results) == len(specs)
    assert len(stats["cells"]) == len(specs)
    for record in stats["cells"].values():
        assert record["slices"] > 1
        assert record["resumed_from"] > 0
        assert record["windows_done"] > record["resumed_from"]
    # And the time-sliced, interrupted, resumed grid is value-identical
    # to a purely local serial run.
    serial = Campaign(specs, store=MemoryStore()).run()
    assert results == serial


def test_worker_killed_mid_grid_requeues_onto_survivor(tmp_path):
    """Acceptance: killing one worker mid-grid must not lose cells."""
    specs = [
        Chapter4Spec(mix="W1", policy=policy, copies=1)
        for policy in CHAPTER4_POLICIES
    ]
    with LocalFleet(
        2, env={"REPRO_CACHE_DIR": str(tmp_path / "worker-cache")}
    ) as fleet:
        survivor_url = fleet.urls[0]
        backend = HttpWorkerBackend(
            fleet.urls,
            heartbeat_interval_s=0.5,
            health_timeout_s=1.0,
            blacklist_after=2,
        )
        with backend:
            iterator = Campaign(
                specs, store=MemoryStore(), backend=backend
            ).iter_run()
            results = [next(iterator)[1]]
            fleet.kill(1)  # SIGKILL one worker while the grid is in flight
            results.extend(result for _, result, _, _ in iterator)
            stats = {s["url"]: s for s in backend.fleet_stats()}
    # No cell was lost, and the survivor carried the fleet home.
    assert len(results) == len(CHAPTER4_POLICIES)
    assert sum(s["completed_cells"] for s in stats.values()) == len(specs)
    assert stats[survivor_url]["completed_cells"] >= len(specs) // 2
    # Every cell matches a purely local serial run of the same grid.
    serial = Campaign(specs, store=MemoryStore()).run()
    assert results == serial


def test_fleet_gang_dispatch_matches_serial(fleet):
    """Gang-aware dispatch (batch_cells): compatible cells ship to one
    worker as a unit, run there in lockstep, and come back
    value-identical to a local serial run."""
    specs = [
        Chapter4Spec(mix="W1", policy="ts", copies=1, inlet_delta_c=0.31 * i)
        for i in range(4)
    ]
    serial = Campaign(specs, store=MemoryStore()).run()
    with HttpWorkerBackend(fleet.urls, batch_cells=2) as backend:
        results = Campaign(
            specs, store=MemoryStore(), backend=backend
        ).run()
    assert results == serial


def test_worker_killed_mid_gang_resumes_warm(tmp_path):
    """Acceptance: killing a worker mid-gang re-plans the surviving
    members as a gang on another worker and resumes every cell from
    its last checkpoint — results identical to a serial run."""
    import threading

    specs = [
        Chapter4Spec(mix="W1", policy="ts", copies=1, inlet_delta_c=0.17 * i)
        for i in range(4)
    ]
    serial = Campaign(specs, store=MemoryStore()).run()
    with LocalFleet(
        2, env={"REPRO_CACHE_DIR": str(tmp_path / "worker-cache")}
    ) as fleet:
        backend = HttpWorkerBackend(
            fleet.urls,
            batch_cells=2,
            window_slice=400,
            heartbeat_interval_s=0.5,
            health_timeout_s=1.0,
            blacklist_after=2,
        )
        with backend:
            results: list = []

            def consume() -> None:
                campaign = Campaign(specs, store=MemoryStore(), backend=backend)
                for _, result, _, _ in campaign.iter_run():
                    results.append(result)

            consumer = threading.Thread(target=consume, daemon=True)
            consumer.start()
            # Let every gang bank at least one checkpoint per member
            # before taking a machine away mid-slice.
            deadline = time.monotonic() + 60
            while (
                backend.dispatch_stats()["partial_slices"] < 4
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            assert backend.dispatch_stats()["partial_slices"] >= 4
            fleet.kill(1)  # SIGKILL mid-gang-slice
            consumer.join(timeout=240)
            assert not consumer.is_alive(), "grid did not finish after the kill"
            stats = backend.dispatch_stats()
    assert len(results) == len(specs)
    # Gang members rescued off the dead worker kept their units and
    # checkpoints: every cell finished from a warm resume, none
    # restarted from window zero.
    assert len(stats["cells"]) == len(specs)
    for record in stats["cells"].values():
        assert record["slices"] > 1
        assert record["windows_done"] > 0
    assert any(record["resumed_from"] > 0 for record in stats["cells"].values())
    assert results == serial
