"""Shared test fixtures."""

from __future__ import annotations

import pytest

from repro.core.windowmodel import WindowModel
from repro.testbed.performance import ServerWindowModel
from repro.testbed.platforms import PE1950, SR1500AL


@pytest.fixture(scope="session")
def window_model() -> WindowModel:
    """One memoized level-1 model shared by all integration tests."""
    return WindowModel()


@pytest.fixture(scope="session")
def pe1950_model() -> ServerWindowModel:
    """Shared PE1950 socket-aware model."""
    return ServerWindowModel(PE1950)


@pytest.fixture(scope="session")
def sr1500al_model() -> ServerWindowModel:
    """Shared SR1500AL socket-aware model."""
    return ServerWindowModel(SR1500AL)
