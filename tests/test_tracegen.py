"""Design-space trace generation (the W x D product of §4.3.1)."""

import pytest

from repro.core.tracegen import DesignPoint, TraceLibrary, design_space
from repro.workloads.mixes import get_mix


def test_design_space_covers_ladders():
    points = design_space()
    core_counts = {p.active_cores for p in points}
    assert core_counts == {0, 1, 2, 3, 4}
    caps = {p.bandwidth_cap_bytes_per_s for p in points}
    assert None in caps
    assert 0.0 in caps


def test_library_generates_entries(window_model):
    library = TraceLibrary(get_mix("W1"), window_model=window_model)
    points = [
        DesignPoint(active_cores=4, dvfs_level=0, bandwidth_cap_bytes_per_s=None),
        DesignPoint(active_cores=2, dvfs_level=0, bandwidth_cap_bytes_per_s=None),
    ]
    entries = library.generate(points)
    # 4-of-4 apps: 1 combination; 2-of-4: 6 combinations.
    assert len(entries) == 1 + 6


def test_stopped_points_yield_zero_entries(window_model):
    library = TraceLibrary(get_mix("W1"), window_model=window_model)
    points = [DesignPoint(active_cores=0, dvfs_level=0, bandwidth_cap_bytes_per_s=None)]
    [entry] = library.generate(points)
    assert entry.app_names == ()
    assert entry.result.instructions_per_s == 0.0


def test_fewer_cores_entries_have_less_demand(window_model):
    library = TraceLibrary(get_mix("W1"), window_model=window_model)
    full = library.generate(
        [DesignPoint(active_cores=4, dvfs_level=0, bandwidth_cap_bytes_per_s=None)]
    )
    half = library.generate(
        [DesignPoint(active_cores=2, dvfs_level=0, bandwidth_cap_bytes_per_s=None)]
    )
    max_half = max(e.result.total_bytes_per_s for e in half)
    assert max_half < full[0].result.total_bytes_per_s


def test_export_schema(window_model):
    library = TraceLibrary(get_mix("W1"), window_model=window_model)
    points = [DesignPoint(active_cores=4, dvfs_level=1, bandwidth_cap_bytes_per_s=None)]
    [record] = library.export(points)
    for key in (
        "apps",
        "active_cores",
        "dvfs_level",
        "instructions_per_s",
        "read_bytes_per_s",
        "l2_misses_per_s",
    ):
        assert key in record
    assert record["dvfs_level"] == 1


def test_dvfs_levels_scale_demand(window_model):
    library = TraceLibrary(get_mix("W1"), window_model=window_model)
    fast = library.generate(
        [DesignPoint(active_cores=4, dvfs_level=0, bandwidth_cap_bytes_per_s=None)]
    )
    slow = library.generate(
        [DesignPoint(active_cores=4, dvfs_level=3, bandwidth_cap_bytes_per_s=None)]
    )
    assert slow[0].result.total_bytes_per_s < fast[0].result.total_bytes_per_s


def test_design_point_validation():
    with pytest.raises(Exception):
        DesignPoint(active_cores=-1, dvfs_level=0, bandwidth_cap_bytes_per_s=None)
