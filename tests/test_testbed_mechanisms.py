"""Chapter 5 mechanisms: hotplug, cpufreq, time slices, chipset throttle."""

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.testbed.chipset import OpenLoopThrottle
from repro.testbed.daughtercard import DaughterCard
from repro.testbed.linux import CPUFreq, CPUHotplug, TimeSliceModel

MB = 1024 * 1024


def test_hotplug_starts_all_online():
    hotplug = CPUHotplug(4)
    assert hotplug.online_cores() == [0, 1, 2, 3]


def test_hotplug_core0_protected():
    hotplug = CPUHotplug(4)
    with pytest.raises(SchedulingError):
        hotplug.set_online(0, False)


def test_hotplug_disable_reenable():
    hotplug = CPUHotplug(4)
    hotplug.set_online(2, False)
    assert hotplug.online_cores() == [0, 1, 3]
    hotplug.set_online(2, True)
    assert hotplug.online_cores() == [0, 1, 2, 3]


def test_apply_count_balances_sockets():
    hotplug = CPUHotplug(4)
    # 2 active: one core per socket (slots 0 and 2).
    assert hotplug.apply_count(2) == [0, 2]
    # 3 active: socket 0 keeps both, socket 1 keeps one.
    assert hotplug.apply_count(3) == [0, 1, 2]
    assert hotplug.apply_count(4) == [0, 1, 2, 3]


def test_apply_count_clamps_to_one_per_socket():
    hotplug = CPUHotplug(4)
    assert hotplug.apply_count(0) == [0, 2]


def test_cpufreq_ladder():
    cpufreq = CPUFreq()
    assert cpufreq.frequency_hz == 3.0e9
    cpufreq.set_level(3)
    assert cpufreq.frequency_hz == 2.0e9
    assert cpufreq.voltage_v == 1.0375


def test_cpufreq_by_frequency():
    cpufreq = CPUFreq()
    cpufreq.set_frequency_hz(2.667e9)
    assert cpufreq.level == 1
    with pytest.raises(ConfigurationError):
        cpufreq.set_frequency_hz(5.0e9)


def test_cpufreq_reset():
    cpufreq = CPUFreq()
    cpufreq.set_level(2)
    cpufreq.reset()
    assert cpufreq.level == 0


def test_time_slice_surcharge_shrinks_with_longer_slices():
    model = TimeSliceModel(cache_bytes=4 * MB)
    short = model.extra_misses_per_s(0.005, resident_bytes=2 * MB)
    default = model.extra_misses_per_s(0.100, resident_bytes=2 * MB)
    assert short > default
    assert short == pytest.approx(default * 20.0)


def test_time_slice_refill_bounded_by_cache():
    model = TimeSliceModel(cache_bytes=4 * MB)
    huge = model.extra_misses_per_s(0.1, resident_bytes=100 * MB)
    capped = model.extra_misses_per_s(0.1, resident_bytes=4 * MB)
    assert huge == pytest.approx(capped)


def test_time_slice_validation():
    model = TimeSliceModel(cache_bytes=4 * MB)
    with pytest.raises(ConfigurationError):
        model.extra_misses_per_s(0.0, resident_bytes=MB)


def test_throttle_bandwidth_roundtrip():
    throttle = OpenLoopThrottle()
    throttle.program_bandwidth(3.0e9)
    cap = throttle.bandwidth_cap_bytes_per_s()
    assert cap == pytest.approx(3.0e9, rel=0.01)


def test_throttle_window_is_66ms():
    assert OpenLoopThrottle().window_s == pytest.approx(0.0646, abs=0.002)


def test_throttle_disable():
    throttle = OpenLoopThrottle()
    throttle.program_bandwidth(3.0e9)
    throttle.program_bandwidth(None)
    assert throttle.bandwidth_cap_bytes_per_s() is None
    assert throttle.clamp(9e9) == 9e9


def test_throttle_clamp():
    throttle = OpenLoopThrottle()
    throttle.program_bandwidth(3.0e9)
    assert throttle.clamp(9e9) <= 3.0e9 * 1.01
    assert throttle.clamp(1e9) == 1e9


def test_throttle_validation():
    with pytest.raises(ConfigurationError):
        OpenLoopThrottle(window_s=0.0)
    throttle = OpenLoopThrottle()
    with pytest.raises(ConfigurationError):
        throttle.program_activations(0)


def test_daughtercard_channels_and_logs():
    card = DaughterCard(sampling_period_s=0.01)
    card.add_channel("amb")
    card.add_channel("inlet", noisy=False)
    for step in range(100):
        card.sample(step * 0.01, {"amb": 80.0, "inlet": 40.0})
    assert len(card.log("amb")) == 100
    assert card.log("inlet").values == [40.0] * 100


def test_daughtercard_respects_sampling_period():
    card = DaughterCard(sampling_period_s=1.0)
    card.add_channel("amb", noisy=False)
    card.sample(0.0, {"amb": 80.0})
    card.sample(0.5, {"amb": 90.0})  # too soon: dropped
    card.sample(1.0, {"amb": 85.0})
    assert card.log("amb").values == [80.0, 85.0]


def test_daughtercard_despiked_mean():
    card = DaughterCard(sampling_period_s=0.01, spike_probability=0.0)
    card.add_channel("amb")
    for step in range(995):
        card.sample(step * 0.01, {"amb": 80.0})
    log = card.log("amb")
    log.values.extend([120.0] * 5)
    log.times_s.extend([10.0] * 5)
    assert log.despiked_mean() == pytest.approx(80.0)


def test_daughtercard_duplicate_channel_rejected():
    card = DaughterCard()
    card.add_channel("amb")
    with pytest.raises(ConfigurationError):
        card.add_channel("amb")


def test_daughtercard_reset():
    card = DaughterCard()
    card.add_channel("amb")
    card.sample(0.0, {"amb": 80.0})
    card.reset()
    assert len(card.log("amb")) == 0
