"""PID controller (Eq. 4.1) and PID-driven policies."""

import pytest

from repro.dtm.base import ThermalReading
from repro.dtm.pid import (
    AMB_GAINS,
    AMB_INTEGRAL_ENABLE_C,
    AMB_TARGET_C,
    DRAM_GAINS,
    PIDController,
    PIDGains,
)
from repro.dtm.pid_policies import PIDPolicy, make_pid_policy
from repro.errors import ConfigurationError
from repro.params.emergency import SIMULATION_LEVELS


def _controller(**kwargs) -> PIDController:
    defaults = dict(
        gains=AMB_GAINS, target_c=109.8, integral_enable_c=109.0
    )
    defaults.update(kwargs)
    return PIDController(**defaults)


def test_paper_constants():
    assert (AMB_GAINS.kc, AMB_GAINS.ki, AMB_GAINS.kd) == (10.4, 180.24, 0.001)
    assert (DRAM_GAINS.kc, DRAM_GAINS.ki, DRAM_GAINS.kd) == (12.4, 155.12, 0.001)
    assert AMB_TARGET_C == 109.8
    assert AMB_INTEGRAL_ENABLE_C == 109.0


def test_cold_temperature_saturates_high():
    pid = _controller()
    assert pid.update(60.0, 0.01) == 5.0  # output_max


def test_hot_temperature_saturates_low():
    pid = _controller()
    assert pid.update(120.0, 0.01) == -5.0  # output_min


def test_output_tracks_error_sign():
    pid = _controller()
    above = pid.update(109.9, 0.01)
    pid.reset()
    below = pid.update(109.7, 0.01)
    assert above < below


def test_integral_disabled_below_enable_threshold():
    pid = _controller()
    for _ in range(100):
        pid.update(105.0, 0.01)
    assert pid.integral == 0.0


def test_integral_accumulates_above_threshold():
    pid = _controller()
    pid.update(109.5, 0.01)
    pid.update(109.5, 0.01)
    assert pid.integral != 0.0


def test_integral_freezes_when_saturated():
    """Anti-windup: with the output pinned at the low rail and the error
    still pushing down, the integral must stop growing (§4.3.4)."""
    pid = _controller()
    for _ in range(50):
        pid.update(115.0, 0.01)  # way above target -> saturated low
    frozen = pid.integral
    pid.update(115.0, 0.01)
    assert pid.integral == frozen


def test_integral_resumes_after_turnaround():
    pid = _controller()
    for _ in range(50):
        pid.update(115.0, 0.01)
    # Temperature falls below target: error flips, integral unwinds.
    before = pid.integral
    pid.update(109.2, 0.01)
    assert pid.integral > before


def test_normalized_maps_rails_to_unit_interval():
    pid = _controller()
    assert pid.normalized(-5.0) == 0.0
    assert pid.normalized(5.0) == 1.0
    assert pid.normalized(0.0) == 0.5


def test_reset_clears_state():
    pid = _controller()
    pid.update(109.5, 0.01)
    pid.reset()
    assert pid.integral == 0.0


def test_gain_validation():
    with pytest.raises(ConfigurationError):
        PIDGains(kc=0.0, ki=1.0, kd=0.0)
    with pytest.raises(ConfigurationError):
        PIDController(AMB_GAINS, 109.8, 109.0, output_min=5.0, output_max=5.0)
    with pytest.raises(ConfigurationError):
        _controller().update(100.0, 0.0)


def test_pid_policy_full_speed_when_cold():
    policy = make_pid_policy("acg")
    decision = policy.decide(ThermalReading(60.0, 40.0), 0.01)
    assert decision.active_cores == 4
    assert decision.memory_on


def test_pid_policy_throttles_when_hot():
    policy = make_pid_policy("acg")
    decision = policy.decide(ThermalReading(112.0, 80.0), 0.01)
    assert decision.active_cores == 0


def test_pid_policy_safety_net_at_tdp():
    for scheme in ("bw", "acg", "cdvfs"):
        policy = make_pid_policy(scheme)
        decision = policy.decide(ThermalReading(110.0, 80.0), 0.01)
        assert not decision.memory_on


def test_pid_policy_intermediate_band():
    policy = make_pid_policy("cdvfs")
    # Slightly above target: some but not full throttling after a while.
    decision = None
    for _ in range(20):
        decision = policy.decide(ThermalReading(109.9, 80.0), 0.01)
    assert decision is not None
    assert 0 < decision.dvfs_level


def test_pid_policy_bw_scheme_caps_bandwidth():
    policy = make_pid_policy("bw")
    decision = policy.decide(ThermalReading(109.9, 80.0), 0.01)
    # Some ladder rung below "no limit" after seeing a hot reading.
    assert decision.emergency_level >= 1


def test_pid_policy_dram_controller_binds_under_fdhs():
    policy = make_pid_policy("acg", levels=SIMULATION_LEVELS)
    # Hot DRAM, cool AMB: the DRAM controller must throttle.
    decision = policy.decide(ThermalReading(90.0, 85.5), 0.01)
    assert decision.active_cores < 4


def test_pid_policy_unknown_scheme():
    with pytest.raises(ConfigurationError):
        PIDPolicy("warp")


def test_pid_policy_name():
    assert make_pid_policy("cdvfs").name == "DTM-CDVFS+PID"
