"""Power-model constants (Table 3.1, Eq. 3.1, Table 4.4)."""

import pytest

from repro.errors import ConfigurationError
from repro.params.power_params import (
    AMBPowerParams,
    DRAMPowerParams,
    ProcessorPowerTable,
    SIMULATED_CPU_POWER,
    XEON_5160_POWER,
)


def test_dram_power_constants():
    p = DRAMPowerParams()
    assert p.static_w == pytest.approx(0.98)
    assert p.alpha1_w_per_gbps == pytest.approx(1.12)
    assert p.alpha2_w_per_gbps == pytest.approx(1.16)


def test_amb_power_constants_match_table_3_1():
    p = AMBPowerParams()
    assert p.idle_last_dimm_w == pytest.approx(4.0)
    assert p.idle_other_dimm_w == pytest.approx(5.1)
    assert p.beta_w_per_gbps == pytest.approx(0.19)
    assert p.gamma_w_per_gbps == pytest.approx(0.75)


def test_amb_idle_depends_on_position():
    p = AMBPowerParams()
    assert p.idle_power_w(is_last_dimm=True) < p.idle_power_w(is_last_dimm=False)


def test_amb_local_costs_more_than_bypass():
    with pytest.raises(ConfigurationError):
        AMBPowerParams(beta_w_per_gbps=0.8, gamma_w_per_gbps=0.2)


def test_acg_power_ladder_matches_table_4_4():
    t = SIMULATED_CPU_POWER
    assert t.acg_power_w(0) == pytest.approx(62.0)
    assert t.acg_power_w(1) == pytest.approx(111.5)
    assert t.acg_power_w(2) == pytest.approx(161.0)
    assert t.acg_power_w(3) == pytest.approx(210.5)
    assert t.acg_power_w(4) == pytest.approx(260.0)


def test_cdvfs_power_ladder_matches_table_4_4():
    t = SIMULATED_CPU_POWER
    assert t.cdvfs_power_at_level(0) == pytest.approx(260.0)
    assert t.cdvfs_power_at_level(1) == pytest.approx(193.4)
    assert t.cdvfs_power_at_level(2) == pytest.approx(116.5)
    assert t.cdvfs_power_at_level(3) == pytest.approx(80.6)
    assert t.cdvfs_power_at_level(4) == pytest.approx(62.0)  # stopped


def test_operating_points_match_table_4_1():
    points = SIMULATED_CPU_POWER.operating_points
    frequencies = [p.frequency_hz for p in points]
    voltages = [p.voltage_v for p in points]
    assert frequencies == [3.2e9, 2.8e9, 1.6e9, 0.8e9]
    assert voltages == [1.55, 1.35, 1.15, 0.95]


def test_acg_power_rejects_invalid_count():
    with pytest.raises(ConfigurationError):
        SIMULATED_CPU_POWER.acg_power_w(5)


def test_cdvfs_power_rejects_invalid_level():
    with pytest.raises(ConfigurationError):
        SIMULATED_CPU_POWER.cdvfs_power_at_level(9)


def test_power_table_requires_matching_lengths():
    with pytest.raises(ConfigurationError):
        ProcessorPowerTable(cdvfs_power_w=(260.0, 100.0))


def test_xeon_ladder_matches_section_5_2_1():
    points = XEON_5160_POWER.operating_points
    assert [round(p.frequency_hz / 1e9, 3) for p in points] == [3.0, 2.667, 2.333, 2.0]
    assert [p.voltage_v for p in points] == [1.2125, 1.1625, 1.1000, 1.0375]


def test_xeon_power_scales_with_voltage_and_frequency():
    full = XEON_5160_POWER.power_w([1.0] * 4, level=0)
    slow = XEON_5160_POWER.power_w([1.0] * 4, level=3)
    assert slow < full
    # Dynamic part scales by (V/Vmax)^2 * (f/fmax).
    expected_scale = (1.0375 / 1.2125) ** 2 * (2.0 / 3.0)
    dynamic_full = full - XEON_5160_POWER.idle_w
    dynamic_slow = slow - XEON_5160_POWER.idle_w
    assert dynamic_slow / dynamic_full == pytest.approx(expected_scale, rel=1e-6)


def test_xeon_power_idle_when_no_activity():
    assert XEON_5160_POWER.power_w([], level=0) == pytest.approx(XEON_5160_POWER.idle_w)


def test_xeon_utilization_clamped():
    over = XEON_5160_POWER.power_w([2.0], level=0)
    one = XEON_5160_POWER.power_w([1.0], level=0)
    assert over == pytest.approx(one)
