"""Analysis helpers and the experiment harness."""

import pytest

from repro.analysis.specs import (
    Chapter4Spec,
    Chapter5Spec,
    bench_copies,
    make_chapter4_policy,
    make_chapter5_policy,
)
from repro.analysis.normalize import (
    arithmetic_mean,
    geometric_mean,
    improvement_percent,
    normalize_map,
)
from repro.analysis.series import downsample, summarize_series, time_above
from repro.analysis.tables import format_series, format_table, sparkline
from repro.errors import ConfigurationError
from repro.testbed.platforms import PE1950


def test_normalize_map():
    values = {"a": 2.0, "b": 4.0}
    normalized = normalize_map(values, "a")
    assert normalized == {"a": 1.0, "b": 2.0}


def test_normalize_map_missing_baseline():
    with pytest.raises(ConfigurationError):
        normalize_map({"a": 1.0}, "z")


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    with pytest.raises(ConfigurationError):
        geometric_mean([])
    with pytest.raises(ConfigurationError):
        geometric_mean([1.0, -1.0])


def test_arithmetic_mean():
    assert arithmetic_mean([1.0, 3.0]) == 2.0


def test_improvement_percent():
    assert improvement_percent(1.80, 1.50) == pytest.approx(16.666, rel=1e-3)


def test_format_table_alignment():
    text = format_table(["name", "value"], [["w1", 1.5], ["longer", 2.25]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "1.500" in lines[2]
    assert "2.250" in lines[3]


def test_format_table_row_width_check():
    with pytest.raises(ConfigurationError):
        format_table(["a"], [[1, 2]])


def test_sparkline_range():
    line = sparkline([0.0, 0.5, 1.0])
    assert len(line) == 3
    assert line[0] != line[-1]


def test_sparkline_flat_series():
    assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"


def test_sparkline_downsamples():
    assert len(sparkline(list(range(1000)), width=50)) == 50


def test_format_series():
    text = format_series("amb", [100.0, 110.0])
    assert "100.00" in text and "110.00" in text


def test_downsample():
    assert downsample([1.0, 2.0, 3.0, 4.0], 2) == [1.0, 3.0]
    assert downsample([1.0], 5) == [1.0]


def test_summarize_series():
    summary = summarize_series([1.0, 2.0, 3.0, 4.0], threshold=3.0)
    assert summary.minimum == 1.0
    assert summary.maximum == 4.0
    assert summary.mean == 2.5
    assert summary.overshoot_fraction == 0.5


def test_time_above():
    times = [0.0, 1.0, 2.0, 3.0]
    values = [0.0, 5.0, 5.0, 0.0]
    assert time_above(times, values, threshold=4.0) == pytest.approx(2.0)


def test_bench_copies_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "3")
    assert bench_copies() == 3
    monkeypatch.setenv("REPRO_BENCH_SCALE", "zero")
    with pytest.raises(ConfigurationError):
        bench_copies()


def test_spec_keys_are_stable_and_distinct():
    a = Chapter4Spec(mix="W1", policy="acg")
    b = Chapter4Spec(mix="W1", policy="acg")
    c = Chapter4Spec(mix="W1", policy="bw")
    assert a.key() == b.key()
    assert a.key() != c.key()
    d = Chapter5Spec(platform="PE1950", mix="W1")
    e = Chapter5Spec(platform="SR1500AL", mix="W1")
    assert d.key() != e.key()


def test_policy_factories():
    for name in ("no-limit", "ts", "bw", "acg", "cdvfs", "acg+pid"):
        policy = make_chapter4_policy(name)
        assert policy is not None
    with pytest.raises(ConfigurationError):
        make_chapter4_policy("warp")
    for name in ("no-limit", "bw", "acg", "cdvfs", "comb"):
        assert make_chapter5_policy(name, PE1950) is not None
    with pytest.raises(ConfigurationError):
        make_chapter5_policy("warp", PE1950)
