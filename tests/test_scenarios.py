"""The scenario engine: registry, validation, lowering, execution."""

from __future__ import annotations

import pytest

from repro.analysis.campaigns import run_campaign
from repro.analysis.specs import Chapter4Spec, Chapter5Spec
from repro.campaign import NullStore
from repro.errors import ConfigurationError
from repro.scenarios import (
    SCENARIO_LIBRARY,
    Scenario,
    get_scenario,
    grid_scenario,
    iter_scenarios,
    register_scenario,
    run_scenario,
    scenario_names,
)


def test_library_registers_at_least_ten_scenarios():
    assert len(SCENARIO_LIBRARY) >= 10
    assert set(s.name for s in SCENARIO_LIBRARY) <= set(scenario_names())


def test_every_library_scenario_lowers_to_a_unique_spec():
    keys = set()
    for scenario in SCENARIO_LIBRARY:
        spec = scenario.spec(copies=1)
        assert spec.kind == scenario.kind
        assert spec.scenario == scenario.name
        assert isinstance(
            spec, Chapter4Spec if scenario.kind == "ch4" else Chapter5Spec
        )
        keys.add(spec.key())
    assert len(keys) == len(SCENARIO_LIBRARY)


def test_library_covers_both_kinds_and_all_axes():
    kinds = {s.kind for s in SCENARIO_LIBRARY}
    assert kinds == {"ch4", "ch5"}
    # Each composition axis is exercised by at least one scenario.
    assert any(s.inlet_delta_c != 0.0 for s in SCENARIO_LIBRARY)
    assert any(s.duty_cycle < 1.0 for s in SCENARIO_LIBRARY)
    assert any(s.bandwidth_scale != 1.0 for s in SCENARIO_LIBRARY)
    assert any(s.channels != 4 or s.dimms_per_channel != 4 for s in SCENARIO_LIBRARY)
    assert any(s.amb_trp_c is not None for s in SCENARIO_LIBRARY)


def test_get_unknown_scenario_is_a_clean_error():
    with pytest.raises(ConfigurationError, match="unknown scenario 'warp'"):
        get_scenario("warp")


def test_register_duplicate_rejected():
    existing = SCENARIO_LIBRARY[0]
    with pytest.raises(ConfigurationError, match="already registered"):
        register_scenario(existing)
    # replace_existing allows idempotent re-registration (module reloads).
    register_scenario(existing, replace_existing=True)


def test_scenario_validation():
    with pytest.raises(ConfigurationError, match="kind"):
        Scenario(name="x", description="d", kind="ch6")
    with pytest.raises(ConfigurationError, match="policy"):
        Scenario(name="x", description="d", kind="ch5", policy="ts")
    with pytest.raises(ConfigurationError, match="duty cycle"):
        Scenario(name="x", description="d", duty_cycle=0.0)
    with pytest.raises(ConfigurationError, match="cooling"):
        Scenario(name="x", description="d", cooling="NOHS_9.9")
    with pytest.raises(ConfigurationError, match="non-empty name"):
        Scenario(name="", description="d")


def test_kind_mismatched_knobs_rejected():
    # A ch5 scenario must not carry ch4-only knobs, and vice versa.
    with pytest.raises(ConfigurationError, match="does not apply"):
        Scenario(name="x", description="d", kind="ch5", policy="bw",
                 inlet_delta_c=5.0)
    with pytest.raises(ConfigurationError, match="does not apply"):
        Scenario(name="x", description="d", kind="ch4",
                 ambient_override_c=45.0)


def test_spec_overrides_mix_and_policy():
    scenario = get_scenario("hot-ambient")
    spec = scenario.spec(copies=3, mix="W5", policy="acg")
    assert (spec.mix, spec.policy, spec.copies) == ("W5", "acg", 3)
    assert spec.inlet_delta_c == scenario.inlet_delta_c


def test_with_overrides_revalidates():
    scenario = get_scenario("idle-burst")
    assert scenario.with_overrides(duty_cycle=0.5).duty_cycle == 0.5
    with pytest.raises(ConfigurationError):
        scenario.with_overrides(duty_cycle=2.0)


def test_iter_scenarios_filters():
    ch5 = list(iter_scenarios(kind="ch5"))
    assert ch5 and all(s.kind == "ch5" for s in ch5)
    stress = list(iter_scenarios(tag="stress"))
    assert stress and all("stress" in s.tags for s in stress)
    assert not list(iter_scenarios(kind="ch4", tag="server"))


def test_grid_scenario_is_canonical():
    a = grid_scenario("ch4", "W1", "ts")
    b = grid_scenario("ch4", "W1", "ts")
    assert a == b
    assert a.spec(copies=1).key() == b.spec(copies=1).key()
    assert grid_scenario("ch5", "W1", "bw").kind == "ch5"
    with pytest.raises(ConfigurationError, match="kind"):
        grid_scenario("ch6", "W1", "ts")


def test_scenario_label_does_not_affect_cache_key():
    """The label is presentation metadata: same physical run, same key."""
    plain = Chapter4Spec(mix="W1", policy="ts", copies=1)
    labeled = Chapter4Spec(mix="W1", policy="ts", copies=1,
                           scenario="ch4:AOHS_1.5:W1:ts")
    assert plain.key() == labeled.key()
    assert (Chapter5Spec(mix="W1", policy="bw", copies=1).key()
            == Chapter5Spec(mix="W1", policy="bw", copies=1,
                            scenario="x").key())


def test_sub_window_duty_cycle_fails_fast():
    """A burst shorter than one DTM window is a config error, not a hang."""
    from repro.core.simulator import SimulationConfig

    with pytest.raises(ConfigurationError, match="at least one DTM interval"):
        SimulationConfig(duty_cycle=0.04, duty_period_s=0.1)
    with pytest.raises(ConfigurationError, match="at least one DTM interval"):
        SimulationConfig(duty_cycle=0.5, duty_period_s=0.01)
    # The library's burst scenario quantizes exactly: 10 of 40 windows on.
    config = SimulationConfig(duty_cycle=0.25, duty_period_s=0.4)
    assert config.duty_windows_per_period() == 40
    assert config.duty_windows_on() == 10


def test_run_scenario_executes():
    result = run_scenario("cold-aisle", copies=1)
    assert result.runtime_s > 0
    assert result.workload == "W1"


def test_idle_burst_traffic_shape_stretches_the_batch():
    """A 25% duty cycle must stretch the batch well beyond continuous."""
    burst = run_scenario("idle-burst", copies=1)
    continuous = run_scenario("cold-aisle", copies=1)  # same mix, no-limit
    assert burst.runtime_s > 2.0 * continuous.runtime_s


def test_scenarios_campaign_grid_runs_and_orders():
    headers, rows = run_campaign(
        "scenarios",
        mixes=[],
        policies=[],
        variants=["cold-aisle", "server-hot-inlet"],
        copies=1,
        store=NullStore(),
    )
    assert headers[0] == "scenario"
    assert [row[0] for row in rows] == ["cold-aisle", "server-hot-inlet"]
    assert rows[0][1] == "ch4" and rows[1][1] == "ch5"


def test_scenarios_campaign_grid_crosses_mix_overrides():
    headers, rows = run_campaign(
        "scenarios",
        mixes=["W1", "W2"],
        policies=[],
        variants=["cold-aisle"],
        copies=1,
    )
    assert [(row[0], row[2]) for row in rows] == [
        ("cold-aisle", "W1"), ("cold-aisle", "W2"),
    ]
