"""Cross-cutting invariants: determinism, scale invariance, model bounds."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.simulator import SimulationConfig, TwoLevelSimulator
from repro.core.windowmodel import WindowModel
from repro.dtm.base import NoLimitPolicy
from repro.dtm.ts import DTMTS
from repro.workloads.profiles import SPEC2000_HIGH, SPEC2000_MODERATE, get_app

APP_NAMES = SPEC2000_HIGH + SPEC2000_MODERATE
FREQUENCIES = (3.2e9, 2.8e9, 1.6e9, 0.8e9)


def test_simulation_is_deterministic(window_model):
    config = SimulationConfig(mix_name="W2", copies=1)
    first = TwoLevelSimulator(config, DTMTS(), window_model=window_model).run()
    second = TwoLevelSimulator(config, DTMTS(), window_model=window_model).run()
    assert first.runtime_s == second.runtime_s
    assert first.traffic_bytes == second.traffic_bytes
    assert first.cpu_energy_j == second.cpu_energy_j


def test_normalized_runtime_converges_with_scale(window_model):
    """The claim behind REPRO_BENCH_SCALE: scheme *orderings* hold at any
    batch length, and the normalized runtime grows monotonically with
    diminishing increments toward its steady state as the cold-start
    warm-up (~the first thermal time constant) amortizes — the paper's
    50-copy batches sit near that asymptote."""
    ratios = []
    for copies in (1, 2, 3):
        config = SimulationConfig(mix_name="W1", copies=copies)
        base = TwoLevelSimulator(config, NoLimitPolicy(), window_model=window_model).run()
        ts = TwoLevelSimulator(config, DTMTS(), window_model=window_model).run()
        ratios.append(ts.runtime_s / base.runtime_s)
    assert ratios[0] < ratios[1] < ratios[2]
    assert (ratios[1] - ratios[0]) > (ratios[2] - ratios[1])


@settings(deadline=None, max_examples=25)
@given(
    st.lists(st.sampled_from(APP_NAMES), min_size=1, max_size=4),
    st.sampled_from(FREQUENCIES),
    st.sampled_from([None, 19.2e9, 12.8e9, 6.4e9]),
)
def test_window_model_bounds(names, frequency, cap):
    """Any (apps, frequency, cap) combination yields physical outputs."""
    model = _SHARED_MODEL
    apps = [get_app(name) for name in names]
    result = model.evaluate(apps, frequency, bandwidth_cap_bytes_per_s=cap)
    assert 0.0 <= result.utilization <= 1.0
    ceiling = model.envelope.peak_bandwidth_bytes_per_s if cap is None else cap
    assert result.total_bytes_per_s <= ceiling * 1.01
    assert result.instructions_per_s > 0.0
    assert result.latency_s >= model.envelope.idle_latency_s
    for slot in result.slots:
        assert slot.instructions_per_s > 0.0
        assert slot.l2_misses_per_s <= slot.l2_accesses_per_s * 1.0001


@settings(deadline=None, max_examples=15)
@given(st.lists(st.sampled_from(APP_NAMES), min_size=1, max_size=4))
def test_window_model_frequency_monotonicity(names):
    """Dropping the clock never increases aggregate instruction rate."""
    model = _SHARED_MODEL
    apps = [get_app(name) for name in names]
    fast = model.evaluate(apps, 3.2e9)
    slow = model.evaluate(apps, 1.6e9)
    assert slow.instructions_per_s <= fast.instructions_per_s * 1.0001


#: Shared across hypothesis examples so memoization keeps them fast.
_SHARED_MODEL = WindowModel()
