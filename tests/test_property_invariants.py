"""Property-style invariant tests for the thermal RC core and kernels.

Three families, each over randomized-but-seeded parameter grids
(hypothesis with ``derandomize=True`` so CI is deterministic):

1. **Monotone convergence** — an RC node stepped under constant power
   moves toward ``stable_c``, never overshoots it, and its distance to
   the stable point is non-increasing.
2. **dt-splitting consistency** — ``step(2dt)`` lands where
   ``step(dt); step(dt)`` lands (the Eq. 3.5 exponential composes).
3. **Batched-vs-scalar equivalence** — :class:`BatchedMemSpot` and
   :class:`MemSpot` produce *bit-identical* samples on any traffic
   sequence, for every cooling/ambient/shape combination.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernel import BatchedMemSpot, make_memspot
from repro.core.memspot import MemSpot
from repro.errors import ConfigurationError
from repro.params.thermal_params import (
    AOHS_1_5,
    FDHS_1_0,
    INTEGRATED_AMBIENT,
    ISOLATED_AMBIENT,
)
from repro.thermal.rc import RCNode, exponential_step

_SETTINGS = settings(max_examples=60, derandomize=True, deadline=None)

_taus = st.floats(min_value=0.5, max_value=500.0, allow_nan=False)
_temps = st.floats(min_value=-20.0, max_value=150.0, allow_nan=False)
_dts = st.floats(min_value=1e-4, max_value=30.0, allow_nan=False)


# ---------------------------------------------------------------------------
# 1. Monotone convergence toward stable_c
# ---------------------------------------------------------------------------


@_SETTINGS
@given(tau=_taus, start=_temps, stable=_temps, dt=_dts)
def test_rc_node_converges_monotonically(tau, start, stable, dt):
    node = RCNode(tau, start)
    gap = abs(stable - start)
    for _ in range(64):
        temp = node.step(stable, dt)
        new_gap = abs(stable - temp)
        # Never overshoots and never moves away.
        assert new_gap <= gap + 1e-12
        if stable >= start:
            assert start - 1e-12 <= temp <= stable + 1e-12
        else:
            assert stable - 1e-12 <= temp <= start + 1e-12
        gap = new_gap
    # After 64 steps of at least dt/tau >= 2e-7 each the gap must have
    # shrunk by the analytic factor exp(-64 * dt / tau).
    expected = abs(stable - start) * math.exp(-64.0 * dt / tau)
    assert gap <= expected * (1.0 + 1e-9) + 1e-9


@_SETTINGS
@given(tau=_taus, start=_temps, stable=_temps)
def test_rc_node_reaches_stable_after_many_taus(tau, start, stable):
    node = RCNode(tau, start)
    for _ in range(40):
        node.step(stable, tau)  # one tau per step -> e^-40 residual
    assert node.temperature_c == pytest.approx(stable, abs=1e-6)


# ---------------------------------------------------------------------------
# 2. dt-splitting consistency
# ---------------------------------------------------------------------------


@_SETTINGS
@given(tau=_taus, start=_temps, stable=_temps, dt=_dts)
def test_rc_step_dt_splitting(tau, start, stable, dt):
    whole = RCNode(tau, start)
    halved = RCNode(tau, start)
    whole.step(stable, 2.0 * dt)
    halved.step(stable, dt)
    halved.step(stable, dt)
    assert whole.temperature_c == pytest.approx(
        halved.temperature_c, abs=1e-9, rel=1e-9
    )


@_SETTINGS
@given(tau=_taus, start=_temps, stable=_temps, dt=_dts)
def test_exponential_step_dt_splitting(tau, start, stable, dt):
    whole = exponential_step(start, stable, 2.0 * dt, tau)
    half = exponential_step(start, stable, dt, tau)
    split = exponential_step(half, stable, dt, tau)
    assert whole == pytest.approx(split, abs=1e-9, rel=1e-9)


# ---------------------------------------------------------------------------
# 3. Batched-vs-scalar kernel equivalence
# ---------------------------------------------------------------------------

_SHAPES = ((4, 4), (2, 8), (1, 1), (3, 6))


@settings(max_examples=20, derandomize=True, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    cooling=st.sampled_from((AOHS_1_5, FDHS_1_0)),
    ambient=st.sampled_from((ISOLATED_AMBIENT, INTEGRATED_AMBIENT)),
    shape=st.sampled_from(_SHAPES),
    warm=st.booleans(),
)
def test_batched_kernel_matches_scalar_bitwise(seed, cooling, ambient, shape, warm):
    channels, dimms = shape
    scalar = MemSpot(cooling, ambient, channels, dimms, warm_start=warm)
    batched = BatchedMemSpot(cooling, ambient, channels, dimms, warm_start=warm)
    assert scalar.sample() == batched.sample()
    rng = random.Random(seed)
    for step in range(60):
        read = rng.random() * 2.5e10
        write = rng.random() * 1.2e10
        heating = rng.random() * 10.0
        dt = 1.0 if step % 17 == 0 else 0.01
        assert scalar.step(read, write, heating, dt) == batched.step(
            read, write, heating, dt
        ), f"diverged at step {step}"
    scalar.reset()
    batched.reset()
    assert scalar.sample() == batched.sample()


def test_batched_kernel_rejects_bad_inputs():
    batched = BatchedMemSpot(AOHS_1_5, ISOLATED_AMBIENT)
    with pytest.raises(ConfigurationError):
        batched.step(-1.0, 0.0, 0.0, 0.01)
    with pytest.raises(ConfigurationError):
        BatchedMemSpot(AOHS_1_5, ISOLATED_AMBIENT, physical_channels=0)


def test_make_memspot_factory():
    assert isinstance(make_memspot("scalar", cooling=AOHS_1_5,
                                   ambient=ISOLATED_AMBIENT), MemSpot)
    assert isinstance(make_memspot("batched", cooling=AOHS_1_5,
                                   ambient=ISOLATED_AMBIENT), BatchedMemSpot)
    with pytest.raises(ConfigurationError):
        make_memspot("warp", cooling=AOHS_1_5, ambient=ISOLATED_AMBIENT)


def test_batched_kernel_exposes_chain_state():
    batched = BatchedMemSpot(FDHS_1_0, ISOLATED_AMBIENT, dimms_per_channel=4)
    batched.step(2e10, 1e10, 0.0, 1.0)
    amb = batched.amb_temperatures_c
    # Nearest DIMM carries the most bypass traffic and runs hottest;
    # the last AMB idles cooler (§5.4.1 / Table 3.1).
    assert amb[0] == max(amb)
    assert amb[-1] == min(amb)
    assert len(batched.dram_temperatures_c) == 4


# ---------------------------------------------------------------------------
# RCNode cached-gain staleness regression (the (dt, tau) cache key)
# ---------------------------------------------------------------------------


def test_rc_node_gain_cache_tracks_tau_changes():
    """Regression: a retuned/copied node must not reuse a stale gain.

    The (dt -> gain) cache once keyed on dt alone, so code that mutated
    or rebuilt ``_tau_s`` (e.g. a copied node, or an ablation sweeping
    time constants in place) kept stepping with the old time constant.
    """
    node = RCNode(tau_s=50.0, initial_c=0.0)
    node.step(100.0, 1.0)  # populate the gain cache at dt=1
    # Simulate the hazard: tau changes underneath the cached gain.
    node._tau_s = 5.0
    node.reset(0.0)
    stepped = node.step(100.0, 1.0)
    fresh = RCNode(tau_s=5.0, initial_c=0.0).step(100.0, 1.0)
    assert stepped == fresh
    assert stepped == pytest.approx(100.0 * (1.0 - math.exp(-1.0 / 5.0)))
