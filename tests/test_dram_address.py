"""Address mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.address import AddressMapper, DecodedAddress
from repro.errors import ConfigurationError


def test_consecutive_lines_rotate_channels():
    mapper = AddressMapper(channels=4)
    channels = [mapper.decode(line * 64).channel for line in range(8)]
    assert channels == [0, 1, 2, 3, 0, 1, 2, 3]


def test_dimm_rotates_after_channels():
    mapper = AddressMapper(channels=4, dimms_per_channel=4)
    assert mapper.decode(0).dimm == 0
    assert mapper.decode(4 * 64).dimm == 1


def test_offset_within_line_ignored():
    mapper = AddressMapper()
    assert mapper.decode(0) == mapper.decode(63)
    assert mapper.decode(0) != mapper.decode(64)


def test_capacity():
    mapper = AddressMapper(
        channels=2, dimms_per_channel=2, banks_per_dimm=4, rows=256, columns=16
    )
    assert mapper.capacity_bytes == 2 * 2 * 4 * 256 * 16 * 64


def test_encode_decode_roundtrip_simple():
    mapper = AddressMapper()
    decoded = DecodedAddress(channel=2, dimm=3, bank=5, row=100, column=17)
    assert mapper.decode(mapper.encode(decoded)) == decoded


def test_encode_validates_ranges():
    mapper = AddressMapper(channels=4)
    with pytest.raises(ConfigurationError):
        mapper.encode(DecodedAddress(channel=4, dimm=0, bank=0, row=0, column=0))


def test_geometry_must_be_power_of_two():
    with pytest.raises(ConfigurationError):
        AddressMapper(channels=3)


def test_negative_address_rejected():
    with pytest.raises(ConfigurationError):
        AddressMapper().decode(-64)


@given(st.integers(min_value=0, max_value=2**40))
def test_decode_fields_in_range(address):
    mapper = AddressMapper()
    d = mapper.decode(address)
    assert 0 <= d.channel < 4
    assert 0 <= d.dimm < 4
    assert 0 <= d.bank < 8
    assert 0 <= d.row < 16384
    assert 0 <= d.column < 128


@given(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=7),
    st.integers(min_value=0, max_value=16383),
    st.integers(min_value=0, max_value=127),
)
def test_roundtrip_property(channel, dimm, bank, row, column):
    mapper = AddressMapper()
    decoded = DecodedAddress(channel, dimm, bank, row, column)
    assert mapper.decode(mapper.encode(decoded)) == decoded
