"""repro.cluster: wire format, execution backends, HTTP coordinator.

Fleet tests that boot real worker subprocesses live in
``test_cluster_fleet.py``; everything here runs against in-process
executors (or an in-process :class:`ReproService`), so it stays fast.
"""

from __future__ import annotations

import multiprocessing
import socket
import threading
import time
from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.analysis.specs import Chapter4Spec, Chapter5Spec
from repro.api import ReproService
from repro.campaign import (
    Campaign,
    JsonDirStore,
    MemoryStore,
    register_runner,
    register_spec_type,
    run_payload,
    spec_key,
    spec_type_for,
    sweep,
)
from repro.cluster import (
    BACKEND_CHOICES,
    HttpWorkerBackend,
    LocalProcessBackend,
    SerialBackend,
    backend_for,
    cell_from_wire,
    cell_to_wire,
)
from repro.errors import ClusterError, ConfigurationError
from repro.scenarios import get_scenario

# ---------------------------------------------------------------------------
# Synthetic specs (cheap cells for engine/coordinator mechanics)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClusterSquareSpec:
    kind: ClassVar[str] = "cluster-square"

    value: int = 2

    def key(self) -> str:
        return spec_key(self)


@dataclass(frozen=True)
class WirelessSpec:
    """Runnable locally, but with no registered spec type — a worker
    that receives it over the wire must reject the cell."""

    kind: ClassVar[str] = "cluster-wireless"

    value: int = 1

    def key(self) -> str:
        return spec_key(self)


def _square(spec) -> dict:
    return {"value": spec.value, "square": spec.value**2}


register_runner(
    "cluster-square", _square, encode=dict, decode=dict,
    spec_type=ClusterSquareSpec,
)
register_runner("cluster-wireless", _square, encode=dict, decode=dict)


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------


def test_wire_round_trips_every_registered_kind():
    ch4 = Chapter4Spec(mix="W3", policy="acg", cooling="FDHS_1.0", copies=1)
    ch5 = Chapter5Spec(platform="SR1500AL", mix="W2", policy="comb", copies=1)
    scenario_cell = get_scenario("hot-ambient").spec(copies=1)
    square = ClusterSquareSpec(7)
    for spec in (ch4, ch5, scenario_cell, square):
        rebuilt = cell_from_wire(cell_to_wire(spec))
        assert rebuilt == spec
        assert rebuilt.key() == spec.key()


def test_wire_preserves_scenario_label():
    cell = get_scenario("cold-aisle").spec(copies=1)
    assert cell_from_wire(cell_to_wire(cell)).scenario == "cold-aisle"


def test_wire_rejects_malformed_cells():
    with pytest.raises(ConfigurationError, match="JSON object"):
        cell_from_wire([1, 2])
    with pytest.raises(ConfigurationError, match="wire_version"):
        cell_from_wire({"wire_version": 99, "kind": "ch4", "fields": {}})
    with pytest.raises(ConfigurationError, match="kind"):
        cell_from_wire({"fields": {}})
    with pytest.raises(ConfigurationError, match="'fields'"):
        cell_from_wire({"kind": "ch4"})
    with pytest.raises(ConfigurationError, match="no spec type"):
        cell_from_wire({"kind": "no-such-kind", "fields": {}})
    with pytest.raises(ConfigurationError, match="cannot rebuild"):
        cell_from_wire({"kind": "ch4", "fields": {"bogus_field": 1}})
    with pytest.raises(ConfigurationError, match="dataclass"):
        cell_to_wire(object())


def test_wire_revalidates_through_spec_post_init():
    wire = cell_to_wire(Chapter4Spec(copies=1))
    wire["fields"]["bandwidth_scale"] = -2.0
    spec = cell_from_wire(wire)  # dataclass accepts it...
    with pytest.raises(ConfigurationError):  # ...the runner rejects it
        run_payload(spec, MemoryStore())


def test_spec_type_registry():
    assert spec_type_for("ch4") is Chapter4Spec
    assert spec_type_for("cluster-square") is ClusterSquareSpec
    with pytest.raises(ConfigurationError):
        spec_type_for("cluster-wireless")

    class NoKind:
        pass

    with pytest.raises(ConfigurationError, match="kind"):
        register_spec_type(NoKind)


# ---------------------------------------------------------------------------
# Serial / local-process backends through the campaign
# ---------------------------------------------------------------------------


def test_serial_and_process_backends_match():
    specs = sweep(ClusterSquareSpec, {"value": (1, 2, 3, 4, 5)})
    with SerialBackend() as serial:
        via_serial = Campaign(
            specs, store=MemoryStore(), backend=serial
        ).run()
    with LocalProcessBackend(jobs=3) as pool:
        via_pool = Campaign(specs, store=MemoryStore(), backend=pool).run()
    assert via_serial == via_pool
    assert [r["square"] for r in via_serial] == [1, 4, 9, 16, 25]


def test_process_backend_is_reused_across_campaigns_then_closed():
    with LocalProcessBackend(jobs=2) as backend:
        first = Campaign(
            sweep(ClusterSquareSpec, {"value": (41, 42)}),
            store=MemoryStore(), backend=backend,
        ).run()
        # Second campaign reuses the same pool (no respawn).
        pool = backend._pool
        assert pool is not None
        second = Campaign(
            sweep(ClusterSquareSpec, {"value": (43, 44)}),
            store=MemoryStore(), backend=backend,
        ).run()
        assert backend._pool is pool
    assert [r["square"] for r in first] == [1681, 1764]
    assert [r["square"] for r in second] == [1849, 1936]
    # A closed backend refuses further work.
    with pytest.raises(ConfigurationError, match="closed"):
        backend.submit_cells([])


def test_abandoned_iter_run_leaves_no_stray_processes():
    """Abandoning a parallel iterator must shut its owned pool down."""
    before = set(multiprocessing.active_children())
    specs = sweep(ClusterSquareSpec, {"value": tuple(range(60, 68))})
    iterator = Campaign(specs, jobs=2, store=MemoryStore()).iter_run()
    next(iterator)
    iterator.close()  # abandon mid-grid
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        stray = set(multiprocessing.active_children()) - before
        if not stray:
            break
        time.sleep(0.05)
    assert not stray, f"worker processes survived abandonment: {stray}"


def test_abandoned_iterator_keeps_borrowed_backend_usable():
    with LocalProcessBackend(jobs=2) as backend:
        specs = sweep(ClusterSquareSpec, {"value": (71, 72, 73)})
        iterator = Campaign(
            specs, store=MemoryStore(), backend=backend
        ).iter_run()
        next(iterator)
        iterator.close()
        # The borrowed backend is still open: a fresh campaign works.
        results = Campaign(
            sweep(ClusterSquareSpec, {"value": (74, 75)}),
            store=MemoryStore(), backend=backend,
        ).run()
        assert [r["square"] for r in results] == [5476, 5625]


class _ShortBackend(SerialBackend):
    """Delivers only the first submitted cell."""

    def iter_results(self):
        yield next(super().iter_results())


def test_backend_under_delivery_is_a_clean_error():
    specs = sweep(ClusterSquareSpec, {"value": (81, 82)})
    with pytest.raises(ConfigurationError, match="without delivering"):
        Campaign(specs, store=MemoryStore(), backend=_ShortBackend()).run()


class _RemoteLikeBackend(SerialBackend):
    """Computes against a private store, like a remote worker would."""

    in_process = False
    shares_disk = False

    def iter_results(self):
        private = MemoryStore()
        for key, spec in self._cells:
            payload, hit, seconds = run_payload(spec, private)
            yield key, payload, hit, seconds


def test_remote_backend_payloads_backfill_the_campaign_store(
    tmp_path, monkeypatch
):
    # Explicit store: payloads computed elsewhere land in it.
    store = MemoryStore()
    Campaign(
        [ClusterSquareSpec(91)], store=store, backend=_RemoteLikeBackend()
    ).run()
    assert store.get(ClusterSquareSpec(91).key()) == {
        "value": 91, "square": 8281,
    }
    # Default store: payloads are written through to the disk layer,
    # which is what lets a later local process read a distributed run.
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    Campaign([ClusterSquareSpec(92)], backend=_RemoteLikeBackend()).run()
    assert JsonDirStore(tmp_path).get(ClusterSquareSpec(92).key()) == {
        "value": 92, "square": 8464,
    }


# ---------------------------------------------------------------------------
# Backend factory
# ---------------------------------------------------------------------------


def test_backend_for_factory():
    assert isinstance(backend_for("serial"), SerialBackend)
    local = backend_for("local", jobs=3)
    assert isinstance(local, LocalProcessBackend) and local.jobs == 3
    http = backend_for("http", workers=["127.0.0.1:9001"])
    assert isinstance(http, HttpWorkerBackend)
    assert set(BACKEND_CHOICES) == {"local", "serial", "vector", "http"}
    with pytest.raises(ConfigurationError, match="needs --workers"):
        backend_for("http")
    with pytest.raises(ConfigurationError, match="only applies"):
        backend_for("serial", workers=["x:1"])
    with pytest.raises(ConfigurationError, match="only applies"):
        backend_for("local", workers=["x:1"])
    # --jobs shapes the local pool; elsewhere it must fail loudly
    # rather than be silently ignored.
    with pytest.raises(ConfigurationError, match="jobs does not apply"):
        backend_for("serial", jobs=4)
    with pytest.raises(ConfigurationError, match="add more --workers"):
        backend_for("http", jobs=4, workers=["127.0.0.1:9001"])
    with pytest.raises(ConfigurationError, match="unknown backend"):
        backend_for("quantum")


def test_http_backend_validates_configuration():
    with pytest.raises(ConfigurationError, match="at least one"):
        HttpWorkerBackend([])
    with pytest.raises(ConfigurationError, match="duplicate"):
        HttpWorkerBackend(["127.0.0.1:9001", "http://127.0.0.1:9001/"])
    with pytest.raises(ConfigurationError, match="http"):
        HttpWorkerBackend(["ftp://files.example"])
    backend = HttpWorkerBackend(["127.0.0.1:9001"])
    assert backend._workers[0].url == "http://127.0.0.1:9001"


# ---------------------------------------------------------------------------
# HTTP coordinator against an in-process service
# ---------------------------------------------------------------------------


@pytest.fixture()
def service(tmp_path, monkeypatch):
    """An in-process ReproService doubling as a worker (private cache)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "service-cache"))
    svc = ReproService(port=0)
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    yield svc
    svc.shutdown()
    svc.server_close()
    thread.join(timeout=5)


def test_http_backend_runs_cells_through_a_service(service):
    specs = sweep(ClusterSquareSpec, {"value": (5, 6, 7)})
    store = MemoryStore()
    with HttpWorkerBackend([service.url]) as backend:
        results = Campaign(specs, store=store, backend=backend).run()
        stats = backend.fleet_stats()
    assert [r["square"] for r in results] == [25, 36, 49]
    # Coordinator merged the worker payloads into the campaign store.
    assert store.get(ClusterSquareSpec(5).key()) == {"value": 5, "square": 25}
    assert stats[0]["completed_cells"] == 3 and stats[0]["alive"]


def test_http_backend_streams_in_spec_order(service):
    specs = sweep(ClusterSquareSpec, {"value": (11, 12, 13, 11)})
    with HttpWorkerBackend([service.url]) as backend:
        campaign = Campaign(specs, store=MemoryStore(), backend=backend)
        rows = [
            (spec.value, result["square"], hit)
            for spec, result, hit, _ in campaign.iter_run()
        ]
    # Spec order, and the duplicate cell is a hit on its repeat.
    assert rows == [
        (11, 121, False), (12, 144, False), (13, 169, False), (11, 121, True),
    ]


def test_http_backend_fatal_on_unknown_worker_kind(service):
    specs = [WirelessSpec(3)]
    with HttpWorkerBackend([service.url]) as backend:
        with pytest.raises(ClusterError, match="rejected cell"):
            Campaign(specs, store=MemoryStore(), backend=backend).run()


def test_http_backend_fails_fast_when_all_workers_unreachable():
    # Bind-then-close guarantees a connection-refused port.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    dead_url = f"http://127.0.0.1:{probe.getsockname()[1]}"
    probe.close()
    backend = HttpWorkerBackend(
        [dead_url], max_attempts=2, blacklist_after=1,
        heartbeat_interval_s=0.2, health_timeout_s=0.5,
    )
    with backend:
        with pytest.raises(ClusterError):
            Campaign(
                [ClusterSquareSpec(21)], store=MemoryStore(), backend=backend
            ).run()


def test_http_backend_empty_submit_is_a_noop():
    backend = HttpWorkerBackend(["127.0.0.1:9001"])
    backend.submit_cells([])
    assert list(backend.iter_results()) == []
    backend.close()
    # Post-close semantics match LocalProcessBackend: loud, not silent.
    with pytest.raises(ConfigurationError, match="closed"):
        backend.submit_cells([])


def test_worker_route_runs_against_the_service_client_store():
    """/v1/worker/run computes through the service's configured client,
    so an embedded worker warms the same store every other route reads."""
    import json
    import urllib.request

    from repro.api import ReproClient

    store = MemoryStore()
    svc = ReproService(port=0, client=ReproClient(store=store))
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    try:
        spec = ClusterSquareSpec(77)
        request = urllib.request.Request(
            svc.url + "/v1/worker/run",
            data=json.dumps({"cells": [cell_to_wire(spec)]}).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            document = json.load(response)
    finally:
        svc.shutdown()
        svc.server_close()
        thread.join(timeout=5)
    assert document["results"][0]["cache"] == "miss"
    assert store.get(spec.key()) == {"value": 77, "square": 5929}


def test_warm_local_store_cells_are_not_dispatched(service):
    """Cells the coordinator's store already holds never hit the wire."""
    store = MemoryStore()
    warm = ClusterSquareSpec(101)
    store.put(warm.key(), {"value": 101, "square": 10201})
    cold = ClusterSquareSpec(102)
    with HttpWorkerBackend([service.url]) as backend:
        rows = [
            (spec.value, result["square"], hit)
            for spec, result, hit, _ in Campaign(
                [warm, cold], store=store, backend=backend
            ).iter_run()
        ]
        stats = backend.fleet_stats()
    assert rows == [(101, 10201, True), (102, 10404, False)]
    # Only the cold cell was dispatched to the fleet.
    assert stats[0]["completed_cells"] == 1


# ---------------------------------------------------------------------------
# Coordinator liveness (white-box: dispatch state under the fleet lock)
# ---------------------------------------------------------------------------


def _pending_cell(key: str = "k"):
    from repro.cluster.http import _PendingCell

    return _PendingCell(key, {"wire_version": 1, "kind": "x", "fields": {}})


def test_take_reopens_cell_excluded_from_every_live_worker():
    """A cell whose exclusion set covers the live fleet must not hang:
    the dispatcher reopens it instead of polling forever."""
    backend = HttpWorkerBackend(["127.0.0.1:9001", "127.0.0.1:9002"])
    cell = _pending_cell()
    with backend._cond:
        backend._remaining = 1
        # The cell failed once on worker 0 while worker 1 was alive;
        # worker 1 has since died, leaving the cell undispatchable.
        cell.excluded = {backend._workers[0].url}
        backend._pending.append(cell)
        backend._workers[1].alive = False
    taken = backend._take_chunk(backend._workers[0], backend._generation)
    assert taken == [cell]
    assert not cell.excluded
    assert backend._workers[0].in_flight == {cell.key: cell}


def test_mark_worker_dead_rescues_in_flight_cells():
    """Heartbeat death requeues a hung worker's in-flight cells so the
    survivors pick them up before the HTTP timeout expires."""
    backend = HttpWorkerBackend(["127.0.0.1:9001", "127.0.0.1:9002"])
    hung = backend._workers[0]
    cell = _pending_cell()
    with backend._cond:
        backend._remaining = 1
        hung.in_flight[cell.key] = cell
    backend._mark_worker_dead(hung, backend._generation)
    assert not hung.alive
    assert not hung.in_flight
    assert list(backend._pending) == [cell]
    # The survivor can take the rescued cell immediately.
    taken = backend._take_chunk(backend._workers[1], backend._generation)
    assert taken == [cell]


def test_late_duplicate_delivery_is_deduplicated():
    """If a rescued cell's original request completes after the rescue
    copy already delivered, the duplicate result is dropped."""
    backend = HttpWorkerBackend(["127.0.0.1:9001", "127.0.0.1:9002"])
    first, second = backend._workers
    with backend._cond:
        backend._remaining = 1
    cell = _pending_cell()
    raw = {"key": "k", "payload": {"square": 1}, "cache": "miss",
           "compute_seconds": 0.1}
    backend._deliver(second, [(cell, raw)], [], backend._generation)
    backend._deliver(first, [(cell, raw)], [], backend._generation)
    assert backend._remaining == 0
    assert list(backend._results) == [("k", {"square": 1}, False, 0.1, {})]
    assert second.completed_cells == 1 and first.completed_cells == 0
    # A late *failure* of the already-delivered cell is likewise only
    # counted against the worker, never requeued.
    backend._requeue(first, [cell], "late socket error", backend._generation)
    assert not backend._pending
    assert first.consecutive_failures == 1


def test_http_backend_dispatch_option_validation():
    """Chunking and slicing knobs validate; the combination is refused
    (slicing is one cell per request by construction)."""
    from repro.errors import ConfigurationError

    workers = ["127.0.0.1:9001"]
    with pytest.raises(ConfigurationError, match="chunk_cells"):
        HttpWorkerBackend(workers, chunk_cells=0)
    with pytest.raises(ConfigurationError, match="window_slice"):
        HttpWorkerBackend(workers, window_slice=0)
    with pytest.raises(ConfigurationError, match="cannot be combined"):
        HttpWorkerBackend(workers, chunk_cells=4, window_slice=100)
    # Auto-chunking: two dispatch waves per slot; slicing forces 1.
    assert HttpWorkerBackend(workers)._auto_chunk(8) == 4
    assert HttpWorkerBackend(workers, window_slice=10)._auto_chunk(8) == 1
    # Huge grids cap at 16 cells per request, so the chunk count keeps
    # scaling with the worker count instead of serializing whole
    # shards behind single requests.
    assert HttpWorkerBackend(workers)._auto_chunk(1000) == 16
    two = ["127.0.0.1:9001", "127.0.0.1:9002"]
    assert HttpWorkerBackend(two)._auto_chunk(1000) == 16
    assert HttpWorkerBackend(two)._auto_chunk(8) == 2  # small grids unchanged


# ---------------------------------------------------------------------------
# Gang-aware dispatch units (white-box, no network)
# ---------------------------------------------------------------------------


def _ts_sweep(cells: int) -> list[tuple[str, Chapter4Spec]]:
    return [
        (spec_key(spec), spec)
        for spec in (
            Chapter4Spec(
                mix="W1", policy="ts", copies=1, inlet_delta_c=0.05 * i
            )
            for i in range(cells)
        )
    ]


def test_batch_cells_validates():
    with pytest.raises(ConfigurationError, match="batch_cells"):
        HttpWorkerBackend(["127.0.0.1:9001"], batch_cells=1)
    backend = backend_for(
        "http", workers=["127.0.0.1:9001"], batch_cells=4
    )
    assert isinstance(backend, HttpWorkerBackend)
    assert backend.batch_cells == 4
    with pytest.raises(ConfigurationError, match="vector or http"):
        backend_for("serial", batch_cells=4)


def test_plan_pending_groups_compatible_cells_into_units():
    backend = HttpWorkerBackend(["127.0.0.1:9001"], batch_cells=3)
    pending = backend._plan_pending(_ts_sweep(7))
    units = [cell.unit for cell in pending]
    # 7 compatible cells at batch_cells=3: two 3-cell units and a
    # trailing solo (a unit of one is just overhead).
    assert [len(u) if u else None for u in units] == [3, 3, 3, 3, 3, 3, None]
    assert len({u for u in units if u}) == 2
    # Without batch_cells every cell is solo.
    plain = HttpWorkerBackend(["127.0.0.1:9001"])._plan_pending(_ts_sweep(3))
    assert all(cell.unit is None for cell in plain)


def test_gang_unit_is_taken_whole_past_the_chunk_cap():
    """Regression: a 20-cell gang on a 2-worker fleet must ship intact
    in one request — rounded up past the 16-cell auto-chunk cap and
    the per-wave chunk target, never truncated."""
    two = ["127.0.0.1:9001", "127.0.0.1:9002"]
    backend = HttpWorkerBackend(two, batch_cells=20)
    cells = _ts_sweep(20)
    with backend._cond:
        pending = backend._plan_pending(cells)
        assert all(cell.unit is not None and len(cell.unit) == 20
                   for cell in pending)
        backend._pending.extend(pending)
        backend._remaining = len(pending)
        backend._chunk = backend._auto_chunk(len(pending))
    assert backend._chunk < 20  # the target alone would split the gang
    taken = backend._take_chunk(backend._workers[0], backend._generation)
    assert [cell.key for cell in taken] == [key for key, _ in cells]
    assert len(backend._workers[0].in_flight) == 20
    assert not backend._pending


def test_gang_unit_never_splits_across_workers():
    """A unit with any member excluded from a worker is skipped whole
    by that worker and taken whole by one that every member accepts."""
    two = ["127.0.0.1:9001", "127.0.0.1:9002"]
    backend = HttpWorkerBackend(two, batch_cells=2)
    with backend._cond:
        pending = backend._plan_pending(_ts_sweep(2))
        pending[1].excluded = {backend._workers[0].url}
        backend._pending.extend(pending)
        backend._remaining = len(pending)
        backend._chunk = backend._auto_chunk(len(pending))
    assert backend._take_chunk(
        backend._workers[1], backend._generation
    ) == pending
    assert not backend._workers[0].in_flight
