"""End-to-end checks of the paper's headline result shapes.

These run small (copies=1) batches through the full two-level simulator
and assert the *orderings and directions* the paper reports — the same
shapes EXPERIMENTS.md records quantitatively at the benchmark scale.
"""

import pytest

from repro.core.simulator import SimulationConfig, TwoLevelSimulator
from repro.dtm.acg import DTMACG
from repro.dtm.base import NoLimitPolicy
from repro.dtm.bw import DTMBW
from repro.dtm.cdvfs import DTMCDVFS
from repro.dtm.pid_policies import make_pid_policy
from repro.dtm.ts import DTMTS
from repro.params.thermal_params import INTEGRATED_AMBIENT


@pytest.fixture(scope="module")
def w1_results(window_model):
    """All policies on W1, AOHS_1.5, isolated model, copies=1."""
    config = SimulationConfig(mix_name="W1", copies=1)
    results = {}
    for key, policy in (
        ("no-limit", NoLimitPolicy()),
        ("ts", DTMTS()),
        ("bw", DTMBW()),
        ("acg", DTMACG()),
        ("cdvfs", DTMCDVFS()),
        ("bw+pid", make_pid_policy("bw")),
        ("acg+pid", make_pid_policy("acg")),
        ("cdvfs+pid", make_pid_policy("cdvfs")),
    ):
        results[key] = TwoLevelSimulator(config, policy, window_model=window_model).run()
    return results


def test_thermal_limit_costs_performance(w1_results):
    """Fig. 4.3: running time under DTM well above no-limit (up to ~2.4x)."""
    norm = w1_results["ts"].runtime_s / w1_results["no-limit"].runtime_s
    assert 1.2 < norm < 2.6


def test_bw_approximately_equals_ts(w1_results):
    """§4.4.2: DTM-BW has almost the same performance as DTM-TS."""
    ratio = w1_results["bw"].runtime_s / w1_results["ts"].runtime_s
    assert 0.93 < ratio < 1.07


def test_acg_beats_ts_substantially(w1_results):
    """§4.4.2: ACG improves up to 29.6% over TS (W1 is the best case)."""
    improvement = 1 - w1_results["acg"].runtime_s / w1_results["ts"].runtime_s
    assert improvement > 0.08


def test_cdvfs_beats_ts_modestly(w1_results):
    """§4.4.2: CDVFS improves ~3.6% on average under the isolated model."""
    improvement = 1 - w1_results["cdvfs"].runtime_s / w1_results["ts"].runtime_s
    assert 0.0 < improvement < 0.15


def test_scheme_ordering_isolated(w1_results):
    """Isolated model: ACG < CDVFS < TS/BW in runtime."""
    assert w1_results["acg"].runtime_s < w1_results["cdvfs"].runtime_s
    assert w1_results["cdvfs"].runtime_s < max(
        w1_results["ts"].runtime_s, w1_results["bw"].runtime_s
    )


def test_pid_improves_every_scheme(w1_results):
    """§4.4.2: the PID controller further improves BW, ACG and CDVFS."""
    for scheme in ("bw", "acg", "cdvfs"):
        assert (
            w1_results[f"{scheme}+pid"].runtime_s < w1_results[scheme].runtime_s
        ), scheme


def test_pid_holds_near_target_without_overshoot(w1_results):
    """Figs. 4.5-4.8: PID pins the AMB near 109.8 and never crosses 110."""
    for scheme in ("acg+pid", "cdvfs+pid"):
        result = w1_results[scheme]
        assert result.peak_amb_c <= 110.0
        assert result.peak_amb_c >= 109.5


def test_acg_cuts_traffic_most(w1_results):
    """Fig. 4.4: ACG's cache relief cuts total traffic; CDVFS trims a
    little; TS/BW do not change it."""
    base = w1_results["no-limit"].traffic_bytes
    assert w1_results["acg"].traffic_bytes < 0.95 * base
    assert w1_results["cdvfs"].traffic_bytes < 1.0 * base
    assert w1_results["ts"].traffic_bytes == pytest.approx(base, rel=0.02)
    assert w1_results["acg"].traffic_bytes < w1_results["cdvfs"].traffic_bytes


def test_pid_slightly_raises_traffic_vs_plain(w1_results):
    """§4.4.2: PID runs more cores/faster clocks, costing a little
    traffic back."""
    assert (
        w1_results["acg+pid"].traffic_bytes
        >= w1_results["acg"].traffic_bytes * 0.999
    )


def test_cdvfs_saves_cpu_energy(w1_results):
    """Fig. 4.10: CDVFS cuts processor energy by tens of percent vs TS."""
    saving = 1 - w1_results["cdvfs"].cpu_energy_j / w1_results["ts"].cpu_energy_j
    assert saving > 0.20


def test_bw_wastes_cpu_energy(w1_results):
    """Fig. 4.10: BW burns ~47-48% more processor energy than TS."""
    extra = w1_results["bw"].cpu_energy_j / w1_results["ts"].cpu_energy_j - 1
    assert extra > 0.25


def test_acg_saves_memory_energy(w1_results):
    """Fig. 4.9: ACG reduces FBDIMM energy vs TS (~16%)."""
    saving = 1 - w1_results["acg"].memory_energy_j / w1_results["ts"].memory_energy_j
    assert saving > 0.05


def test_integrated_model_promotes_cdvfs(window_model):
    """§4.5.1: under the integrated model CDVFS closes the gap to ACG
    (and beats it outright in the paper)."""
    config = SimulationConfig(mix_name="W1", copies=1, ambient=INTEGRATED_AMBIENT)
    acg = TwoLevelSimulator(config, DTMACG(), window_model=window_model).run()
    cdvfs = TwoLevelSimulator(config, DTMCDVFS(), window_model=window_model).run()
    iso = SimulationConfig(mix_name="W1", copies=1)
    acg_iso = TwoLevelSimulator(iso, DTMACG(), window_model=window_model).run()
    cdvfs_iso = TwoLevelSimulator(iso, DTMCDVFS(), window_model=window_model).run()
    gap_isolated = cdvfs_iso.runtime_s / acg_iso.runtime_s
    gap_integrated = cdvfs.runtime_s / acg.runtime_s
    assert gap_integrated < gap_isolated


def test_stronger_interaction_hurts_everyone(window_model):
    """Fig. 4.13: higher interaction degree, longer runtimes."""
    runtimes = []
    for degree in (1.0, 2.0):
        config = SimulationConfig(
            mix_name="W1",
            copies=1,
            ambient=INTEGRATED_AMBIENT.with_interaction(degree),
        )
        result = TwoLevelSimulator(config, DTMBW(), window_model=window_model).run()
        runtimes.append(result.runtime_s)
    assert runtimes[1] > runtimes[0]


def test_higher_trp_performs_better(window_model):
    """Fig. 4.2: a TRP closer to the TDP loses less performance."""
    low = SimulationConfig(mix_name="W1", copies=1)
    result_low = TwoLevelSimulator(
        low, DTMTS(amb_trp_c=106.0), window_model=window_model
    ).run()
    result_high = TwoLevelSimulator(
        low, DTMTS(amb_trp_c=109.5), window_model=window_model
    ).run()
    assert result_high.runtime_s < result_low.runtime_s
