"""Thermal sensor emulation and despiking."""

import pytest

from repro.errors import ConfigurationError
from repro.thermal.sensors import ThermalSensor, despike


def test_exact_sensor_passthrough():
    sensor = ThermalSensor()
    assert sensor.read(85.3, 0.0) == pytest.approx(85.3)


def test_quantization():
    sensor = ThermalSensor(quantization_c=0.5)
    assert sensor.read(85.26, 0.0) == pytest.approx(85.5)
    sensor2 = ThermalSensor(quantization_c=1.0)
    assert sensor2.read(85.26, 0.0) == pytest.approx(85.0)


def test_stale_readings_within_period():
    sensor = ThermalSensor(period_s=1.0)
    first = sensor.read(80.0, 0.0)
    stale = sensor.read(90.0, 0.5)
    fresh = sensor.read(90.0, 1.5)
    assert first == stale == pytest.approx(80.0)
    assert fresh == pytest.approx(90.0)


def test_spikes_appear_with_probability_one():
    sensor = ThermalSensor(spike_probability=1.0, spike_magnitude_c=10.0)
    assert sensor.read(80.0, 0.0) == pytest.approx(90.0)


def test_spikes_reproducible_with_seed():
    a = ThermalSensor(spike_probability=0.5, seed=42)
    b = ThermalSensor(spike_probability=0.5, seed=42)
    reads_a = [a.read(80.0, t) for t in range(100)]
    reads_b = [b.read(80.0, t) for t in range(100)]
    assert reads_a == reads_b


def test_reset_forgets_stale_value():
    sensor = ThermalSensor(period_s=10.0)
    sensor.read(80.0, 0.0)
    sensor.reset()
    assert sensor.read(95.0, 1.0) == pytest.approx(95.0)


def test_sensor_validation():
    with pytest.raises(ConfigurationError):
        ThermalSensor(period_s=-1.0)
    with pytest.raises(ConfigurationError):
        ThermalSensor(spike_probability=1.5)


def test_despike_drops_hottest_half_percent():
    samples = [80.0] * 995 + [120.0] * 5
    kept = despike(samples, drop_fraction=0.005)
    assert max(kept) == pytest.approx(80.0)
    assert len(kept) == 995


def test_despike_keeps_everything_at_zero_fraction():
    samples = [1.0, 2.0, 3.0]
    assert len(despike(samples, 0.0)) == 3


def test_despike_empty():
    assert despike([]) == []


def test_despike_validation():
    with pytest.raises(ConfigurationError):
        despike([1.0], drop_fraction=1.0)
