"""GridMemSpot: the grid kernel is bit-identical to per-cell stepping.

The acceptance property (hypothesis, derandomized for CI): stack N
heterogeneous :class:`BatchedMemSpot` cells into one
:class:`GridMemSpot`, drive both through the same traffic stream, and
every per-window :class:`MemSpotSample` — and the final synced thermal
state — is *exactly* equal (``==`` on floats, no tolerance) to stepping
each cell alone.  The property must hold for the pure-python backend
(true by construction) and, when NumPy is importable, for the numpy
backend (true because the array path replays the scalar expressions
with IEEE-correctly-rounded elementwise ops only).

NumPy optionality is covered explicitly: ``backend="auto"`` falls back
to python when the import fails, ``backend="numpy"`` refuses loudly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.kernel as kernel_module
from repro.core.kernel import BatchedMemSpot, GridMemSpot, MemSpot
from repro.errors import ConfigurationError
from repro.params import (
    INTEGRATED_AMBIENT,
    ISOLATED_AMBIENT,
)
from repro.params.thermal_params import COOLING_CONFIGS

#: The (cooling, ambient) pairs with a recorded inlet temperature —
#: the only combinations BatchedMemSpot accepts.
_VALID_THERMAL = tuple(
    (COOLING_CONFIGS[cooling], ambient)
    for cooling in ("AOHS_1.5", "FDHS_1.0")
    for ambient in (ISOLATED_AMBIENT, INTEGRATED_AMBIENT)
)

_BACKENDS = ("python", "numpy")


def _require_backend(backend: str) -> None:
    if backend == "numpy":
        pytest.importorskip("numpy")


def _make_cell(thermal_index: int, channels: int, dimms: int, warm: bool):
    cooling, ambient = _VALID_THERMAL[thermal_index % len(_VALID_THERMAL)]
    return BatchedMemSpot(
        cooling,
        ambient,
        physical_channels=channels,
        dimms_per_channel=dimms,
        warm_start=warm,
    )


@st.composite
def _grid_case(draw):
    dimms = draw(st.sampled_from((2, 4)))
    cells = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=len(_VALID_THERMAL) - 1),
                st.sampled_from((1, 2, 4)),
                st.booleans(),
            ),
            min_size=1,
            max_size=5,
        )
    )
    bw = st.floats(
        min_value=0.0, max_value=12.8e9, allow_nan=False, allow_infinity=False
    )
    heat = st.floats(
        min_value=0.0, max_value=60.0, allow_nan=False, allow_infinity=False
    )
    windows = draw(
        st.lists(
            st.tuples(
                st.lists(bw, min_size=len(cells), max_size=len(cells)),
                st.lists(bw, min_size=len(cells), max_size=len(cells)),
                st.lists(heat, min_size=len(cells), max_size=len(cells)),
            ),
            min_size=1,
            max_size=25,
        )
    )
    return dimms, cells, windows


@pytest.mark.parametrize("backend", _BACKENDS)
@settings(max_examples=60, derandomize=True, deadline=None)
@given(case=_grid_case())
def test_grid_step_is_bitwise_identical_to_per_cell(backend, case):
    """N stacked cells == N solo cells, sample by sample, bit for bit."""
    _require_backend(backend)
    dimms, cell_params, windows = case
    reference = [_make_cell(t, ch, dimms, w) for t, ch, w in cell_params]
    stacked = [_make_cell(t, ch, dimms, w) for t, ch, w in cell_params]
    grid = GridMemSpot(stacked, backend=backend)
    assert grid.backend == backend

    for reads, writes, heats, in windows:
        grid_samples = grid.step_all(reads, writes, heats, 0.01)
        for cell, read, write, heat, got in zip(
            reference, reads, writes, heats, grid_samples
        ):
            expected = cell.step(read, write, heat, 0.01)
            assert got == expected

    grid.sync()
    for cell, ref in zip(stacked, reference):
        assert cell.thermal_state() == ref.thermal_state()


@pytest.mark.parametrize("backend", _BACKENDS)
def test_grid_survives_membership_change_mid_stream(backend):
    """Rebuilding a smaller grid from synced cells continues bit-exactly

    (the gang retirement path: cells leave, the survivors' next grid
    re-pulls their state)."""
    _require_backend(backend)
    reference = [_make_cell(i, 4, 4, True) for i in range(3)]
    stacked = [_make_cell(i, 4, 4, True) for i in range(3)]

    grid = GridMemSpot(stacked, backend=backend)
    for _ in range(40):
        grid.step_all([4e9] * 3, [2e9] * 3, [24.0] * 3, 0.01)
        for cell in reference:
            cell.step(4e9, 2e9, 24.0, 0.01)
    grid.sync()

    survivors = GridMemSpot(stacked[:2], backend=backend)
    for _ in range(40):
        survivors.step_all([1e9] * 2, [8e9] * 2, [12.0] * 2, 0.01)
        for cell in reference[:2]:
            cell.step(1e9, 8e9, 12.0, 0.01)
    survivors.sync()
    for cell, ref in zip(stacked[:2], reference[:2]):
        assert cell.thermal_state() == ref.thermal_state()
    # The retired cell kept its state from the first grid.
    assert stacked[2].thermal_state() == reference[2].thermal_state()


def test_auto_backend_falls_back_to_python(monkeypatch):
    monkeypatch.setattr(kernel_module, "_import_numpy", lambda: None)
    grid = GridMemSpot([_make_cell(0, 4, 4, True)], backend="auto")
    assert grid.backend == "python"
    (sample,) = grid.step_all([1e9], [1e9], [10.0], 0.01)
    assert sample == _make_cell(0, 4, 4, True).step(1e9, 1e9, 10.0, 0.01)


def test_numpy_backend_refuses_without_numpy(monkeypatch):
    monkeypatch.setattr(kernel_module, "_import_numpy", lambda: None)
    with pytest.raises(ConfigurationError, match="requires NumPy"):
        GridMemSpot([_make_cell(0, 4, 4, True)], backend="numpy")


def test_grid_validation_errors():
    cooling, ambient = _VALID_THERMAL[0]
    with pytest.raises(ConfigurationError, match="at least one cell"):
        GridMemSpot([])
    with pytest.raises(ConfigurationError, match="BatchedMemSpot"):
        GridMemSpot([MemSpot(cooling, ambient)])
    with pytest.raises(ConfigurationError, match="share the RC topology"):
        GridMemSpot([_make_cell(0, 4, 2, True), _make_cell(0, 4, 4, True)])
    with pytest.raises(ConfigurationError, match="backend"):
        GridMemSpot([_make_cell(0, 4, 4, True)], backend="fortran")


@pytest.mark.parametrize("backend", _BACKENDS)
def test_grid_step_input_validation(backend):
    _require_backend(backend)
    grid = GridMemSpot([_make_cell(0, 4, 4, True)], backend=backend)
    with pytest.raises(ConfigurationError):
        grid.step_all([1e9, 1e9], [1e9], [0.0], 0.01)
    with pytest.raises(ConfigurationError):
        grid.step_all([-1.0], [0.0], [0.0], 0.01)
