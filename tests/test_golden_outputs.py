"""Golden-master regression tests pinning the numeric outputs.

These tests freeze the exact numbers of one Chapter 4 and one Chapter 5
experiment cell — plus the campaign tables built from them — so that
refactors for speed (batched kernels, scenario plumbing, cache layers)
cannot silently drift the physics.  Any numeric deviation beyond 1e-9
fails the suite.

Every golden run executes against a :class:`NullStore`, so a stale disk
or memory cache can never mask real drift: the numbers always come from
the code under test.

Refreshing the goldens (after an *intentional* model change)::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_golden_outputs.py

then commit the rewritten ``tests/goldens/*.json`` files alongside the
model change that explains them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.analysis.campaigns import run_campaign
from repro.analysis.specs import (
    Chapter4Spec,
    Chapter5Spec,
    run_result_to_dict,
    server_result_to_dict,
)
from repro.campaign import NullStore, run

GOLDEN_DIR = Path(__file__).parent / "goldens"
TOLERANCE = 1e-9
UPDATE = os.environ.get("REPRO_UPDATE_GOLDENS") == "1"


def _ch4_payload() -> dict:
    result = run(Chapter4Spec(mix="W1", policy="ts", copies=1), store=NullStore())
    return run_result_to_dict(result)


def _ch5_payload() -> dict:
    result = run(
        Chapter5Spec(platform="PE1950", mix="W1", policy="bw", copies=1),
        store=NullStore(),
    )
    return server_result_to_dict(result)


def _campaign_payload() -> dict:
    """The formatted campaign tables (the byte-identity check)."""
    tables = {}
    for grid, policies, variants in (
        ("ch4", ["ts"], ["AOHS_1.5"]),
        ("ch5", ["bw"], ["PE1950"]),
    ):
        headers, rows = run_campaign(
            grid,
            mixes=["W1"],
            policies=policies,
            variants=variants,
            copies=1,
            store=NullStore(),
        )
        tables[grid] = {"headers": headers, "rows": rows}
    return tables


def _compare(golden, fresh, path: str, mismatches: list[str]) -> None:
    """Recursively diff two JSON-shaped values within TOLERANCE."""
    if isinstance(golden, dict) and isinstance(fresh, dict):
        for key in sorted(set(golden) | set(fresh)):
            if key not in golden or key not in fresh:
                mismatches.append(f"{path}.{key}: present on one side only")
                continue
            _compare(golden[key], fresh[key], f"{path}.{key}", mismatches)
    elif isinstance(golden, list) and isinstance(fresh, list):
        if len(golden) != len(fresh):
            mismatches.append(f"{path}: length {len(golden)} != {len(fresh)}")
            return
        for index, (g, f) in enumerate(zip(golden, fresh)):
            _compare(g, f, f"{path}[{index}]", mismatches)
    elif isinstance(golden, float) or isinstance(fresh, float):
        if abs(float(golden) - float(fresh)) > TOLERANCE:
            mismatches.append(f"{path}: {golden!r} != {fresh!r} (>{TOLERANCE})")
    elif golden != fresh:
        mismatches.append(f"{path}: {golden!r} != {fresh!r}")


def _check_golden(name: str, fresh: dict) -> None:
    path = GOLDEN_DIR / f"{name}.json"
    if UPDATE:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(fresh, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"golden {name} refreshed")
    if not path.exists():
        pytest.fail(
            f"golden file {path} missing; generate it with "
            "REPRO_UPDATE_GOLDENS=1 and commit it"
        )
    golden = json.loads(path.read_text())
    mismatches: list[str] = []
    _compare(golden, fresh, name, mismatches)
    if mismatches:
        pytest.fail(
            "numeric drift against golden master (refresh intentionally with "
            "REPRO_UPDATE_GOLDENS=1):\n  " + "\n  ".join(mismatches[:40])
        )


def test_golden_ch4_cell():
    _check_golden("ch4_W1_ts_copies1", _ch4_payload())


def test_golden_ch5_cell():
    _check_golden("ch5_PE1950_W1_bw_copies1", _ch5_payload())


def test_golden_campaign_tables():
    _check_golden("campaign_tables", _campaign_payload())
