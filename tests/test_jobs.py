"""The jobs service: persistence, scheduling, quotas, metrics, recovery.

Unit layers (store/queue/tenancy/metrics) run against fakes and tmp
dirs; integration layers drive a real ``JobsManager`` in-process and —
for the crash-recovery acceptance case — an actual ``python -m repro
serve --jobs`` subprocess that gets SIGKILLed mid-job and restarted.

The acceptance criteria covered here:

- a killed-and-restarted server resumes queued AND running jobs from
  their on-disk records (the running one from its last window-slice
  checkpoint, not from zero);
- a higher-priority submit preempts the running job at a window-slice
  boundary, and the preempted job later resumes and completes;
- quota exhaustion answers a structured 429 with ``retry_after_s``;
- ``/metrics`` reports queue depth and per-tenant latency histograms;
- a warm job's result envelope is byte-identical to the equivalent
  warm CLI ``--json`` run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.api import ReproClient, ReproService, SimulateRequest
from repro.api.envelope import SCHEMA_VERSION, dumps_canonical
from repro.campaign import MemoryStore
from repro.cli import main
from repro.engine.progress import PROGRESS, ProgressBroker
from repro.errors import ConfigurationError
from repro.jobs import (
    CANCELLED,
    COMPLETED,
    QUEUED,
    RUNNING,
    JobQueue,
    JobRecord,
    JobsApiError,
    JobsClient,
    JobsManager,
    JobStore,
    MetricsRegistry,
    QuotaExceeded,
    QuotaManager,
    TenantPolicy,
    TokenBucket,
    job_progress_label,
    wait_for_port_file,
)
from repro.obs.metrics import OVERFLOW_LABEL

#: The workhorse request: one cold ch4 cell, ~0.3 s of compute —
#: thousands of windows, so small window slices yield many preemption
#: points.
FAST_REQUEST = {"type": "simulate", "mix": "W1", "policy": "ts", "copies": 1}


def _wait_until(predicate, timeout_s: float = 30.0, interval_s: float = 0.005):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval_s)
    raise AssertionError(f"condition not reached within {timeout_s}s")


def _event_names(record: JobRecord) -> list[str]:
    return [event["event"] for event in record.events]


# ---------------------------------------------------------------------------
# store
# ---------------------------------------------------------------------------


class TestJobStore:
    def test_record_round_trips_through_disk(self, tmp_path):
        store = JobStore(tmp_path)
        record = JobRecord(
            job_id="job-abc",
            tenant="alice",
            request=dict(FAST_REQUEST),
            priority=7,
            status=RUNNING,
            submit_seq=3,
            created_s=1.5,
            started_s=2.0,
            cells_total=2,
            cells_done=1,
            cell_states={"ch4-xyz": {"windows": 100}},
            results=[{"kind": "ch4"}],
            preemptions=2,
        )
        record.add_event("queued")
        store.save(record)
        loaded = store.load("job-abc")
        assert loaded is not None
        assert loaded.to_dict() == record.to_dict()

    def test_load_rejects_garbage_and_foreign_files(self, tmp_path):
        store = JobStore(tmp_path)
        (tmp_path / "torn.json").write_text('{"format": "repro-job-re')
        (tmp_path / "other.json").write_text('{"format": "not-a-job"}')
        assert store.load("torn") is None
        assert store.load("other") is None
        assert list(store.iter_records()) == []

    def test_malformed_job_ids_rejected(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(ConfigurationError):
            store.load("../escape")
        with pytest.raises(ConfigurationError):
            store.load(".hidden")

    def test_sweep_tmp_removes_crashed_writer_leftovers(self, tmp_path):
        store = JobStore(tmp_path)
        (tmp_path / "job-x.json.tmp.123.456.1").write_text("{")
        assert store.sweep_tmp() == 1
        assert list(tmp_path.glob("*.tmp.*")) == []


# ---------------------------------------------------------------------------
# queue
# ---------------------------------------------------------------------------


class TestJobQueue:
    def test_priority_then_fifo_ordering(self, tmp_path):
        queue = JobQueue(tmp_path)
        low_first = queue.submit("t", FAST_REQUEST, priority=0)
        low_second = queue.submit("t", FAST_REQUEST, priority=0)
        high = queue.submit("t", FAST_REQUEST, priority=5)
        order = [queue.next_ready(timeout_s=0).job_id for _ in range(3)]
        assert order == [high.job_id, low_first.job_id, low_second.job_id]
        assert queue.next_ready(timeout_s=0) is None

    def test_requeue_keeps_original_submit_seq(self, tmp_path):
        queue = JobQueue(tmp_path)
        first = queue.submit("t", FAST_REQUEST, priority=0)
        running = queue.next_ready(timeout_s=0)
        assert running.job_id == first.job_id
        later = queue.submit("t", FAST_REQUEST, priority=0)
        queue.requeue(running, event="preempted")
        # The preempted job resumes ahead of the later same-priority
        # arrival because it kept its original sequence number.
        assert queue.next_ready(timeout_s=0).job_id == first.job_id
        assert queue.next_ready(timeout_s=0).job_id == later.job_id

    def test_has_queued_higher_than(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit("t", FAST_REQUEST, priority=3)
        assert queue.has_queued_higher_than(0)
        assert not queue.has_queued_higher_than(3)

    def test_cancel_queued_is_immediate_and_skipped_at_pop(self, tmp_path):
        queue = JobQueue(tmp_path)
        record = queue.submit("t", FAST_REQUEST)
        cancelled = queue.request_cancel(record.job_id)
        assert cancelled.status == CANCELLED
        assert queue.next_ready(timeout_s=0) is None
        # Idempotent on terminal jobs.
        assert queue.request_cancel(record.job_id).status == CANCELLED

    def test_recover_requeues_running_with_checkpoints(self, tmp_path):
        queue = JobQueue(tmp_path)
        record = queue.submit("t", FAST_REQUEST, priority=2)
        popped = queue.next_ready(timeout_s=0)
        popped.cell_states["ch4-key"] = {"windows": 500}
        queue.persist(popped)
        # A fresh queue over the same directory models the restarted
        # process: the running job comes back queued, checkpoint intact.
        revived = JobQueue(tmp_path)
        counts = revived.recover()
        assert counts == {"requeued": 1, "terminal": 0}
        resumed = revived.next_ready(timeout_s=0)
        assert resumed.job_id == record.job_id
        assert resumed.cell_states == {"ch4-key": {"windows": 500}}
        assert "recovered" in _event_names(resumed)

    def test_recover_skips_terminal_jobs(self, tmp_path):
        queue = JobQueue(tmp_path)
        record = queue.submit("t", FAST_REQUEST)
        record.status = COMPLETED
        queue.persist(record)
        revived = JobQueue(tmp_path)
        assert revived.recover() == {"requeued": 0, "terminal": 1}
        assert revived.next_ready(timeout_s=0) is None


# ---------------------------------------------------------------------------
# tenancy
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestTenancy:
    def test_token_bucket_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=2.0, burst=2, clock=clock)
        assert bucket.take() and bucket.take()
        assert not bucket.take()
        assert bucket.seconds_until_token() == pytest.approx(0.5)
        clock.now += 0.5
        assert bucket.take()

    def test_quota_max_active_and_rate_reasons(self):
        clock = FakeClock()
        quotas = QuotaManager(
            TenantPolicy(max_active=1, rate_per_s=1.0, burst=2), clock=clock
        )
        quotas.admit("alice", active_jobs=0)
        with pytest.raises(QuotaExceeded) as excinfo:
            quotas.admit("alice", active_jobs=1)
        assert excinfo.value.reason == "max_active"
        assert excinfo.value.tenant == "alice"
        quotas.admit("alice", active_jobs=0)  # second burst token
        with pytest.raises(QuotaExceeded) as excinfo:
            quotas.admit("alice", active_jobs=0)
        assert excinfo.value.reason == "rate"
        assert excinfo.value.retry_after_s == pytest.approx(1.0)

    def test_per_tenant_overrides(self):
        quotas = QuotaManager(
            TenantPolicy(max_active=8),
            {"batch": TenantPolicy(max_active=1)},
        )
        assert quotas.policy_for("batch").max_active == 1
        assert quotas.policy_for("anyone-else").max_active == 8

    def test_tenant_tracking_is_bounded(self):
        clock = FakeClock()
        quotas = QuotaManager(clock=clock, max_tenants=2)
        for name in ("a", "b", "c", "d"):
            quotas.admit(name, active_jobs=0)
        # Beyond max_tenants, strangers share the overflow bucket
        # instead of growing the dict without bound.
        assert len(quotas.usage()) <= 3  # a, b, _overflow


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_gauge_histogram_text_rendering(self):
        registry = MetricsRegistry()
        registry.counter_inc("repro_test_total", "help text", tenant="t1")
        registry.counter_inc("repro_test_total", "help text", tenant="t1")
        registry.gauge_set("repro_test_depth", "depth", 3)
        registry.observe("repro_test_seconds", "latency", 0.05, tenant="t1")
        text = registry.render_text()
        assert '# TYPE repro_test_total counter' in text
        assert 'repro_test_total{tenant="t1"} 2' in text
        assert "repro_test_depth 3" in text
        assert '# TYPE repro_test_seconds histogram' in text
        assert 'le="+Inf"' in text
        assert 'repro_test_seconds_count{tenant="t1"} 1' in text

    def test_json_rendering_mirrors_series(self):
        registry = MetricsRegistry()
        registry.counter_inc("repro_test_total", "help", tenant="t1")
        document = registry.render_json()
        by_name = {metric["name"]: metric for metric in document}
        assert by_name["repro_test_total"]["type"] == "counter"
        assert by_name["repro_test_total"]["series"][0]["value"] == 1

    def test_label_cardinality_is_bounded(self):
        registry = MetricsRegistry()
        for index in range(200):
            registry.counter_inc(
                "repro_card_total", "help", tenant=f"tenant-{index}"
            )
        text = registry.render_text()
        series_lines = [
            line for line in text.splitlines()
            if line.startswith("repro_card_total{")
        ]
        assert len(series_lines) <= 65
        assert registry.counter_value(
            "repro_card_total", tenant=OVERFLOW_LABEL
        ) > 0

    def test_counter_value_reads_back(self):
        registry = MetricsRegistry()
        registry.counter_inc("repro_x_total", "help", 2.5)
        assert registry.counter_value("repro_x_total") == 2.5
        assert registry.counter_value("repro_missing_total") == 0.0


# ---------------------------------------------------------------------------
# progress broker isolation
# ---------------------------------------------------------------------------


class TestProgressIsolation:
    def test_two_concurrent_tracked_runs_never_cross_streams(self):
        broker = ProgressBroker()
        errors: list[str] = []

        def run(label: str, windows: int) -> None:
            with broker.track(label):
                for step in range(1, windows + 1):
                    broker.publish({"windows": step, "done": False})
                    seen = broker.snapshot(label)[label]
                    if seen["windows"] != step:
                        errors.append(
                            f"{label} saw {seen['windows']} != {step}"
                        )
                broker.publish({"windows": windows, "done": True})

        threads = [
            threading.Thread(target=run, args=("campaign-a", 400)),
            threading.Thread(target=run, args=("campaign-b", 300)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        snapshot = broker.snapshot()
        assert snapshot["campaign-a"] == {"windows": 400, "done": True}
        assert snapshot["campaign-b"] == {"windows": 300, "done": True}

    def test_two_concurrent_campaign_cells_publish_under_own_labels(self):
        """Two real cells computed concurrently stay label-isolated."""
        results: dict[str, object] = {}

        def run_cell(policy: str) -> None:
            client = ReproClient(store=MemoryStore())
            request = SimulateRequest(mix="W1", policy=policy, copies=1)
            results[policy] = client.simulate(request)

        threads = [
            threading.Thread(target=run_cell, args=(policy,))
            for policy in ("ts", "acg")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        keys = {results[p].provenance.cache_key for p in ("ts", "acg")}
        assert len(keys) == 2
        snapshot = PROGRESS.snapshot()
        for key in keys:
            assert snapshot[key]["done"] is True

    def test_job_progress_labels_are_namespaced_per_job(self):
        assert job_progress_label("job-1", "ch4-k") == "job-1/ch4-k"
        assert job_progress_label("job-2", "ch4-k") != job_progress_label(
            "job-1", "ch4-k"
        )


# ---------------------------------------------------------------------------
# in-process manager: lifecycle, preemption, drain/recover, byte identity
# ---------------------------------------------------------------------------


def _manager(tmp_path, store, **kwargs) -> JobsManager:
    manager = JobsManager(
        str(tmp_path / "jobs"), store=store, window_slice=2000, **kwargs
    )
    return manager


def _submit(manager: JobsManager, request=FAST_REQUEST, **kwargs) -> str:
    body = {"request": dict(request)}
    body.update(kwargs)
    return manager.submit_body(body)["job"]["id"]


def _wait_terminal(manager: JobsManager, job_id: str) -> JobRecord:
    _wait_until(lambda: manager.queue.get(job_id).terminal)
    return manager.queue.get(job_id)


class TestJobsManager:
    def test_job_completes_and_warm_result_is_cli_byte_identical(
        self, tmp_path
    ):
        store = MemoryStore()
        # Two direct-client runs: the second (warm) is the reference
        # envelope with deterministic provenance.
        direct_client = ReproClient(store=store)
        request = SimulateRequest(**{
            key: value for key, value in FAST_REQUEST.items()
            if key != "type"
        })
        direct_client.simulate(request)
        direct = direct_client.simulate(request)
        assert direct.provenance.cache == "hit"
        manager = _manager(tmp_path, store)
        manager.start()
        try:
            job_id = _submit(manager, tenant="alice")
            record = _wait_terminal(manager, job_id)
            assert record.status == COMPLETED
            status, document = manager.result_document(job_id)
            assert status == 200
            # The warm job ran against the already-populated store, so
            # its bare-envelope result serializes byte-identically to
            # the direct client envelope (which is what the CLI
            # ``--json`` path prints).
            assert dumps_canonical(document) == direct.to_json()
            assert document["provenance"]["cache"] == "hit"
            assert document["provenance"]["compute_seconds"] == 0.0
        finally:
            manager.stop(drain=False)

    def test_higher_priority_submit_preempts_at_slice_boundary(
        self, tmp_path
    ):
        store = MemoryStore()
        manager = JobsManager(
            str(tmp_path / "jobs"), store=store, window_slice=200
        )
        manager.start()
        try:
            low_id = _submit(
                manager,
                {"type": "simulate", "mix": "W1", "policy": "ts", "copies": 2},
                tenant="slow",
            )
            _wait_until(
                lambda: manager.queue.get(low_id).status == RUNNING
            )
            high_id = _submit(
                manager,
                {"type": "simulate", "mix": "W1", "policy": "acg",
                 "copies": 1},
                tenant="urgent",
                priority=10,
            )
            low = _wait_terminal(manager, low_id)
            high = _wait_terminal(manager, high_id)
            assert high.status == COMPLETED and low.status == COMPLETED
            assert low.preemptions >= 1
            events = _event_names(low)
            assert "preempted" in events
            # The preempted job resumed from its persisted checkpoint
            # rather than restarting the cell.
            assert "cell_resumed" in events
            # The high-priority job finished before the preempted one.
            assert high.finished_s <= low.finished_s
        finally:
            manager.stop(drain=False)

    def test_cancel_running_job_stops_at_slice_boundary(self, tmp_path):
        manager = JobsManager(
            str(tmp_path / "jobs"), store=MemoryStore(), window_slice=200
        )
        manager.start()
        try:
            job_id = _submit(manager)
            _wait_until(lambda: manager.queue.get(job_id).status == RUNNING)
            manager.cancel(job_id)
            record = _wait_terminal(manager, job_id)
            assert record.status == CANCELLED
            status, document = manager.result_document(job_id)
            assert status == 409
            assert document["status"] == CANCELLED
        finally:
            manager.stop(drain=False)

    def test_drain_then_fresh_manager_resumes_from_checkpoint(self, tmp_path):
        store = MemoryStore()
        manager = JobsManager(
            str(tmp_path / "jobs"), store=store, window_slice=200
        )
        manager.start()
        job_id = _submit(manager)
        _wait_until(
            lambda: bool(manager.queue.get(job_id).cell_states)
            or manager.queue.get(job_id).terminal
        )
        manager.stop(drain=True)
        parked = manager.queue.get(job_id)
        if parked.terminal:  # pragma: no cover - very fast machine
            pytest.skip("job finished before the drain landed")
        assert parked.status == QUEUED
        assert "drained" in _event_names(parked)

        successor = JobsManager(
            str(tmp_path / "jobs"), store=store, window_slice=2000
        )
        assert successor.start()["requeued"] == 1
        try:
            record = _wait_terminal(successor, job_id)
            assert record.status == COMPLETED
            assert "cell_resumed" in _event_names(record)
        finally:
            successor.stop(drain=False)

    def test_submit_body_validation(self, tmp_path):
        manager = _manager(tmp_path, MemoryStore())
        with pytest.raises(ConfigurationError):
            manager.submit_body({"request": {"type": "simulate"}, "bogus": 1})
        with pytest.raises(ConfigurationError):
            manager.submit_body({"request": {"type": "unknown-kind"}})
        with pytest.raises(ConfigurationError):
            manager.submit_body({"request": "not-a-dict"})

    def test_quota_exhaustion_raises_structured_429_payload(self, tmp_path):
        clock = FakeClock()
        manager = JobsManager(
            str(tmp_path / "jobs"),
            store=MemoryStore(),
            quotas=QuotaManager(
                TenantPolicy(max_active=8, rate_per_s=0.5, burst=1),
                clock=clock,
            ),
        )
        _submit(manager, tenant="alice")
        with pytest.raises(QuotaExceeded) as excinfo:
            _submit(manager, tenant="alice")
        assert excinfo.value.reason == "rate"
        assert excinfo.value.retry_after_s == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# HTTP layer: routes, 429s, healthz, /metrics
# ---------------------------------------------------------------------------


@pytest.fixture()
def jobs_service(tmp_path):
    """A threaded jobs-enabled service over a private memory store."""
    manager = JobsManager(
        str(tmp_path / "jobs"),
        store=MemoryStore(),
        window_slice=2000,
        quotas=QuotaManager(
            TenantPolicy(max_active=2, rate_per_s=1000.0, burst=1000)
        ),
    )
    service = ReproService(port=0, jobs=manager)
    manager.start()
    thread = threading.Thread(target=service.serve_forever, daemon=True)
    thread.start()
    yield service
    manager.stop(drain=False)
    service.shutdown()
    service.server_close()
    thread.join(timeout=5)


def _http(service, method, path, payload=None):
    request = urllib.request.Request(
        service.url + path,
        data=None if payload is None else json.dumps(payload).encode(),
        method=method,
    )
    try:
        with urllib.request.urlopen(request) as response:
            body = response.read()
            return response.status, json.loads(body) if body else {}
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestJobsHttp:
    def test_full_lifecycle_over_http(self, jobs_service):
        client = JobsClient(jobs_service.url)
        document = client.submit(dict(FAST_REQUEST), tenant="alice")
        assert document["schema_version"] == SCHEMA_VERSION
        job_id = document["job"]["id"]
        result = client.wait(job_id, timeout_s=60)
        assert result["provenance"]["cache"] in ("hit", "miss")
        listing = client.list("alice")
        assert [job["id"] for job in listing["jobs"]] == [job_id]
        assert client.list("nobody")["jobs"] == []

    def test_quota_429_is_structured_with_retry_after(self, tmp_path):
        manager = JobsManager(
            str(tmp_path / "jobs-q"),
            store=MemoryStore(),
            quotas=QuotaManager(TenantPolicy(max_active=1)),
        )
        service = ReproService(port=0, jobs=manager)
        thread = threading.Thread(target=service.serve_forever, daemon=True)
        thread.start()
        try:
            # Scheduler intentionally NOT started: the first job stays
            # queued, deterministically exhausting max_active=1.
            status, _ = _http(
                service, "POST", "/v1/jobs",
                {"request": FAST_REQUEST, "tenant": "alice"},
            )
            assert status == 202
            client = JobsClient(service.url)
            with pytest.raises(JobsApiError) as excinfo:
                client.submit(dict(FAST_REQUEST), tenant="alice")
            assert excinfo.value.status == 429
            body = excinfo.value.body
            assert body["reason"] == "max_active"
            assert body["tenant"] == "alice"
            assert excinfo.value.retry_after_s is not None
        finally:
            service.shutdown()
            service.server_close()
            thread.join(timeout=5)

    def test_healthz_reports_queue_and_backend(self, jobs_service):
        status, document = _http(jobs_service, "GET", "/v1/healthz")
        assert status == 200
        assert document["status"] == "ok"
        assert document["uptime_s"] >= 0
        assert document["jobs"]["backend"] == "serial"
        assert set(document["jobs"]) >= {"queue_depth", "running", "backend"}

    def test_healthz_without_jobs_still_answers(self):
        service = ReproService(port=0)
        thread = threading.Thread(target=service.serve_forever, daemon=True)
        thread.start()
        try:
            status, document = _http(service, "GET", "/v1/healthz")
            assert status == 200
            assert document["jobs"] is None
            status, document = _http(service, "GET", "/v1/jobs")
            assert status == 503
            assert document["reason"] == "jobs_disabled"
        finally:
            service.shutdown()
            service.server_close()
            thread.join(timeout=5)

    def test_metrics_reports_depth_and_tenant_histograms(self, jobs_service):
        client = JobsClient(jobs_service.url)
        document = client.submit(dict(FAST_REQUEST), tenant="metered")
        client.wait(document["job"]["id"], timeout_s=60)
        with urllib.request.urlopen(jobs_service.url + "/metrics") as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")
            text = resp.read().decode()
        assert "repro_jobs_queue_depth" in text
        assert 'repro_jobs_submitted_total{tenant="metered"} 1' in text
        assert 'repro_job_latency_seconds_bucket{' in text
        assert 'tenant="metered"' in text
        assert "repro_uptime_seconds" in text
        names = {m["name"] for m in client.metrics_json()["metrics"]}
        assert {"repro_jobs_queue_depth", "repro_job_latency_seconds",
                "repro_http_request_seconds"} <= names

    def test_unknown_job_is_404(self, jobs_service):
        status, document = _http(jobs_service, "GET", "/v1/jobs/job-missing")
        assert status == 404
        assert "unknown job" in document["error"]


# ---------------------------------------------------------------------------
# run-concurrency bound (satellite: no unbounded handler threads)
# ---------------------------------------------------------------------------


class TestRunCapacity:
    def test_over_capacity_run_answers_structured_429(self):
        service = ReproService(port=0, max_concurrent_runs=1)
        thread = threading.Thread(target=service.serve_forever, daemon=True)
        thread.start()
        try:
            assert service.acquire_run_slot()
            status, document = _http(
                service, "GET", "/v1/simulate?mix=W1&policy=ts&copies=1"
            )
            assert status == 429
            assert document["reason"] == "capacity"
            assert document["retry_after_s"] == pytest.approx(1.0)
            service.release_run_slot()
        finally:
            service.shutdown()
            service.server_close()
            thread.join(timeout=5)


# ---------------------------------------------------------------------------
# the crash-recovery acceptance case: a real server, SIGKILLed mid-job
# ---------------------------------------------------------------------------


def _spawn_server(workdir: Path, cache_dir: Path, *extra: str):
    port_file = workdir / "port.txt"
    port_file.unlink(missing_ok=True)
    src_dir = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_dir)]
        + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--jobs",
            "--port", "0", "--port-file", str(port_file),
            "--jobs-dir", str(workdir / "jobs"),
            "--window-slice", "2000",
            *extra,
        ],
        env=env,
        cwd=workdir,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        port = wait_for_port_file(str(port_file), timeout_s=30)
    except TimeoutError:
        process.kill()
        raise
    return process, f"http://127.0.0.1:{port}"


class TestServerCrashRecovery:
    def test_sigkilled_server_resumes_queued_and_running_jobs(self, tmp_path):
        cache = tmp_path / "cache"
        process, url = _spawn_server(tmp_path, cache)
        jobs_dir = tmp_path / "jobs"
        try:
            client = JobsClient(url)
            running_id = client.submit(
                {"type": "simulate", "mix": "W1", "policy": "ts",
                 "copies": 2},
            )["job"]["id"]
            queued_id = client.submit(
                {"type": "simulate", "mix": "W1", "policy": "acg",
                 "copies": 1},
            )["job"]["id"]

            def checkpointed():
                raw = (jobs_dir / f"{running_id}.json").read_text()
                try:
                    job = json.loads(raw)["job"]
                except ValueError:
                    return False  # raced a non-atomic reader? never: retry
                return job["status"] == "running" and job["cell_states"]

            _wait_until(checkpointed, timeout_s=60)
        finally:
            process.kill()
            process.wait(timeout=10)

        # The restarted server must pick both jobs up from disk: the
        # running one resumes from its checkpoint, the queued one runs.
        process, url = _spawn_server(tmp_path, cache)
        try:
            client = JobsClient(url)
            for job_id in (running_id, queued_id):
                result = client.wait(job_id, timeout_s=120)
                assert result["schema_version"] == SCHEMA_VERSION
            status_doc = client.status(running_id)["job"]
            events = [event["event"] for event in status_doc["events"]]
            assert "recovered" in events
            assert "cell_resumed" in events
            assert status_doc["status"] == "completed"

            # Warm resubmission of the recovered request returns an
            # envelope byte-identical to the warm CLI --json run over
            # the same cache directory.
            resubmit_id = client.submit(
                {"type": "simulate", "mix": "W1", "policy": "ts",
                 "copies": 2},
            )["job"]["id"]
            job_result = client.wait(resubmit_id, timeout_s=60)
            assert job_result["provenance"]["cache"] == "hit"
        finally:
            process.kill()
            process.wait(timeout=10)

        cli_text = _cli_json(
            cache, "simulate", "--mix", "W1", "--policy", "ts",
            "--copies", "2",
        )
        assert dumps_canonical(job_result) == cli_text.rstrip("\n")

    def test_sigterm_drains_and_exits_cleanly(self, tmp_path):
        process, url = _spawn_server(tmp_path, tmp_path / "cache")
        client = JobsClient(url)
        job_id = client.submit(dict(FAST_REQUEST))["job"]["id"]
        _wait_until(
            lambda: client.status(job_id)["job"]["status"] != "queued",
            timeout_s=30,
        )
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30) == 0
        # Whatever the drain interrupted is parked on disk, resumable.
        record = json.loads(
            (tmp_path / "jobs" / f"{job_id}.json").read_text()
        )["job"]
        assert record["status"] in ("queued", "completed")


def _cli_json(cache_dir: Path, *argv: str) -> str:
    """Run the CLI in-process with a private cache; return its stdout."""
    import contextlib
    import io

    stdout = io.StringIO()
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    try:
        with contextlib.redirect_stdout(stdout):
            assert main([*argv, "--json"]) == 0
    finally:
        if old is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = old
    return stdout.getvalue()
