"""DDR2 bank timing enforcement."""

import pytest

from repro.dram.bank import Bank, DimmDevices
from repro.errors import ConfigurationError, TimingViolationError
from repro.params.dram_timing import DDR2Timing
from repro.units import ns_to_s

TIMING = DDR2Timing()


def test_read_access_schedule():
    bank = Bank(TIMING)
    schedule = bank.plan_access(0.0, is_write=False)
    assert schedule.activate_s == 0.0
    assert schedule.cas_s == pytest.approx(ns_to_s(15.0))  # tRCD
    assert schedule.burst_start_s == pytest.approx(ns_to_s(30.0))  # + tCL
    assert schedule.burst_end_s == pytest.approx(
        ns_to_s(30.0 + TIMING.burst_duration_ns)
    )


def test_bank_ready_respects_trc():
    bank = Bank(TIMING)
    schedule = bank.plan_access(0.0, is_write=False)
    # tRC = 54 ns dominates read precharge paths for (5-5-5) DDR2-667.
    assert schedule.bank_ready_s >= ns_to_s(TIMING.trc_ns) - 1e-15


def test_write_ready_includes_twpd():
    bank = Bank(TIMING)
    schedule = bank.plan_access(0.0, is_write=True)
    # Precharge cannot start before CAS + tWPD; ready = + tRP.
    expected_min = schedule.cas_s + ns_to_s(TIMING.twpd_ns + TIMING.trp_ns)
    assert schedule.bank_ready_s >= expected_min - 1e-15


def test_commit_advances_bank_state():
    bank = Bank(TIMING)
    schedule = bank.plan_access(0.0, is_write=False)
    bank.commit(schedule)
    assert bank.next_activate_s == schedule.bank_ready_s
    assert bank.accesses == 1


def test_commit_rejects_early_activate():
    bank = Bank(TIMING)
    first = bank.plan_access(0.0, is_write=False)
    bank.commit(first)
    early = first  # same times again: violates tRC
    with pytest.raises(TimingViolationError):
        bank.commit(early)


def test_commit_rejects_trcd_violation():
    bank = Bank(TIMING)
    schedule = bank.plan_access(0.0, is_write=False)
    bad = type(schedule)(
        activate_s=schedule.activate_s,
        cas_s=schedule.activate_s + ns_to_s(5.0),  # < tRCD
        burst_start_s=schedule.burst_start_s,
        burst_end_s=schedule.burst_end_s,
        bank_ready_s=schedule.bank_ready_s,
    )
    with pytest.raises(TimingViolationError):
        bank.commit(bad)


def test_back_to_back_same_bank_spaced_by_trc():
    devices = DimmDevices(banks=8, timing=TIMING)
    first = devices.schedule_access(0, 0.0, is_write=False)
    second = devices.schedule_access(0, 0.0, is_write=False)
    assert second.activate_s - first.activate_s >= ns_to_s(TIMING.trc_ns) - 1e-15


def test_different_banks_spaced_by_trrd():
    devices = DimmDevices(banks=8, timing=TIMING)
    first = devices.schedule_access(0, 0.0, is_write=False)
    second = devices.schedule_access(1, 0.0, is_write=False)
    gap = second.activate_s - first.activate_s
    assert gap >= ns_to_s(TIMING.trrd_ns) - 1e-15
    assert gap < ns_to_s(TIMING.trc_ns)  # much tighter than same-bank


def test_data_bus_serializes_bursts():
    devices = DimmDevices(banks=8, timing=TIMING)
    schedules = [devices.schedule_access(b, 0.0, is_write=False) for b in range(4)]
    for earlier, later in zip(schedules, schedules[1:]):
        assert later.burst_start_s >= earlier.burst_end_s - 1e-15


def test_write_to_read_turnaround():
    devices = DimmDevices(banks=8, timing=TIMING)
    write = devices.schedule_access(0, 0.0, is_write=True)
    read = devices.schedule_access(1, 0.0, is_write=False)
    # Read CAS must wait tWTR after the write burst ends.
    assert read.cas_s >= write.burst_end_s + ns_to_s(TIMING.twtr_ns) - 1e-15


def test_reads_do_not_impose_twtr_on_reads():
    devices = DimmDevices(banks=8, timing=TIMING)
    first = devices.schedule_access(0, 0.0, is_write=False)
    second = devices.schedule_access(1, 0.0, is_write=False)
    # The second read is limited by its own tRRD + tRCD + tCL path
    # (39 ns), not by a write turnaround: it starts well before the
    # first burst end + tWTR would allow a post-write read.
    assert second.burst_start_s >= first.burst_end_s - 1e-15
    assert second.burst_start_s < first.burst_end_s + ns_to_s(TIMING.twtr_ns)


def test_total_accesses_counted():
    devices = DimmDevices(banks=4, timing=TIMING)
    for bank in range(4):
        devices.schedule_access(bank, 0.0, is_write=False)
    assert devices.total_accesses() == 4


def test_reset_clears_state():
    devices = DimmDevices(banks=2, timing=TIMING)
    devices.schedule_access(0, 0.0, is_write=True)
    devices.reset()
    assert devices.total_accesses() == 0
    schedule = devices.schedule_access(0, 0.0, is_write=False)
    assert schedule.activate_s == 0.0


def test_bank_index_validation():
    devices = DimmDevices(banks=2, timing=TIMING)
    with pytest.raises(ConfigurationError):
        devices.schedule_access(2, 0.0, is_write=False)


def test_needs_at_least_one_bank():
    with pytest.raises(ConfigurationError):
        DimmDevices(banks=0, timing=TIMING)
