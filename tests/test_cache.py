"""Cache substrate: LRU simulator, MRCs, sharing model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.mrc import MissRatioCurve, measured_mrc
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.sharing import CacheClient, SharedCacheModel
from repro.errors import ConfigurationError

MB = 1024 * 1024


def test_cold_miss_then_hit():
    cache = SetAssociativeCache(64 * 1024, ways=8)
    assert not cache.access(0)
    assert cache.access(0)
    assert cache.miss_ratio == pytest.approx(0.5)


def test_lru_eviction_order():
    cache = SetAssociativeCache(2 * 64, ways=2, line_bytes=64)  # 1 set, 2 ways
    cache.access(0)
    cache.access(64)
    cache.access(0)  # refresh line 0
    cache.access(128)  # evicts line 64 (LRU)
    assert cache.access(0)
    assert not cache.access(64)


def test_dirty_eviction_counts_writeback():
    cache = SetAssociativeCache(2 * 64, ways=2, line_bytes=64)
    cache.access(0, is_write=True)
    cache.access(64)
    cache.access(128)  # evicts dirty line 0
    assert cache.writebacks == 1


def test_clean_eviction_no_writeback():
    cache = SetAssociativeCache(2 * 64, ways=2, line_bytes=64)
    cache.access(0)
    cache.access(64)
    cache.access(128)
    assert cache.writebacks == 0


def test_occupancy_bounded_by_capacity():
    cache = SetAssociativeCache(64 * 1024, ways=8)
    for line in range(10000):
        cache.access(line * 64)
    assert cache.occupancy() <= 64 * 1024 // 64


def test_streaming_misses_everything():
    cache = SetAssociativeCache(64 * 1024, ways=8)
    for line in range(5000):
        cache.access(line * 64)
    assert cache.miss_ratio == 1.0


def test_working_set_fits():
    cache = SetAssociativeCache(64 * 1024, ways=8)
    lines = 64 * 1024 // 64 // 2  # half capacity
    for _ in range(10):
        for line in range(lines):
            cache.access(line * 64)
    assert cache.miss_ratio < 0.11  # only the cold pass misses


def test_geometry_validation():
    with pytest.raises(ConfigurationError):
        SetAssociativeCache(1000, ways=3)  # not a multiple
    with pytest.raises(ConfigurationError):
        SetAssociativeCache(3 * 64 * 8, ways=8)  # sets not power of two


def test_mrc_monotone_non_increasing():
    curve = MissRatioCurve(m_peak=0.8, m_floor=0.2, c_half_bytes=1 * MB, alpha=1.3)
    capacities = [0.25 * MB, 0.5 * MB, 1 * MB, 2 * MB, 4 * MB, 8 * MB]
    ratios = [curve.miss_ratio(c) for c in capacities]
    assert all(a >= b for a, b in zip(ratios, ratios[1:]))


def test_mrc_limits():
    curve = MissRatioCurve(m_peak=0.8, m_floor=0.2, c_half_bytes=1 * MB)
    assert curve.miss_ratio(0) == pytest.approx(0.8)
    assert curve.miss_ratio(1 * MB) == pytest.approx(0.5)  # halfway at c_half
    assert curve.miss_ratio(1e15) == pytest.approx(0.2, abs=1e-3)


def test_mrc_streaming_detection():
    streaming = MissRatioCurve(m_peak=0.8, m_floor=0.79, c_half_bytes=1 * MB)
    sensitive = MissRatioCurve(m_peak=0.8, m_floor=0.2, c_half_bytes=1 * MB)
    assert streaming.is_streaming()
    assert not sensitive.is_streaming()


def test_mrc_validation():
    with pytest.raises(ConfigurationError):
        MissRatioCurve(m_peak=0.5, m_floor=0.6, c_half_bytes=1 * MB)
    with pytest.raises(ConfigurationError):
        MissRatioCurve(m_peak=0.5, m_floor=0.1, c_half_bytes=0.0)


def test_measured_mrc_monotone():
    # A looping working set measured at growing capacities behaves like
    # a real cache: miss ratio non-increasing.
    trace = [(i % 3000) * 64 for i in range(30000)]
    results = measured_mrc(trace, [32 * 1024, 64 * 1024, 256 * 1024])
    values = [results[c] for c in sorted(results)]
    assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))


def test_single_client_gets_whole_cache():
    model = SharedCacheModel(4 * MB)
    curve = MissRatioCurve(0.8, 0.2, 1 * MB)
    [share] = model.solve([CacheClient("a", 1e9, curve)])
    assert share.capacity_bytes == pytest.approx(4 * MB)


def test_shares_sum_to_capacity():
    model = SharedCacheModel(4 * MB)
    curve = MissRatioCurve(0.8, 0.2, 1 * MB)
    clients = [CacheClient(f"c{i}", 1e9, curve) for i in range(4)]
    shares = model.solve(clients)
    assert sum(s.capacity_bytes for s in shares) == pytest.approx(4 * MB, rel=1e-6)


def test_equal_clients_get_equal_shares():
    model = SharedCacheModel(4 * MB)
    curve = MissRatioCurve(0.8, 0.2, 1 * MB)
    shares = model.solve([CacheClient("a", 1e9, curve), CacheClient("b", 1e9, curve)])
    assert shares[0].capacity_bytes == pytest.approx(shares[1].capacity_bytes, rel=1e-6)


def test_hungrier_client_takes_more():
    model = SharedCacheModel(4 * MB)
    curve = MissRatioCurve(0.8, 0.2, 1 * MB)
    shares = model.solve(
        [CacheClient("hungry", 4e9, curve), CacheClient("light", 1e9, curve)]
    )
    by_name = {s.name: s for s in shares}
    assert by_name["hungry"].capacity_bytes > by_name["light"].capacity_bytes


def test_idle_client_holds_nothing():
    model = SharedCacheModel(4 * MB)
    curve = MissRatioCurve(0.8, 0.2, 1 * MB)
    shares = model.solve([CacheClient("busy", 1e9, curve), CacheClient("idle", 0.0, curve)])
    by_name = {s.name: s for s in shares}
    assert by_name["idle"].capacity_bytes == 0.0
    assert by_name["busy"].capacity_bytes == pytest.approx(4 * MB)


def test_fewer_clients_lower_miss_ratio():
    """The DTM-ACG effect: removing co-runners lowers everyone's miss
    ratio through bigger shares."""
    model = SharedCacheModel(4 * MB)
    curve = MissRatioCurve(0.8, 0.2, 1 * MB, alpha=1.3)
    four = model.solve([CacheClient(f"c{i}", 1e9, curve) for i in range(4)])
    two = model.solve([CacheClient(f"c{i}", 1e9, curve) for i in range(2)])
    assert two[0].miss_ratio < four[0].miss_ratio


def test_total_miss_rate_decreases_with_fewer_clients():
    model = SharedCacheModel(4 * MB)
    curve = MissRatioCurve(0.8, 0.2, 1 * MB, alpha=1.3)
    four = model.total_miss_rate_per_s(
        [CacheClient(f"c{i}", 1e9, curve) for i in range(4)]
    )
    two = model.total_miss_rate_per_s(
        [CacheClient(f"c{i}", 1e9, curve) for i in range(2)]
    )
    # Aggregate miss rate per client is lower with fewer co-runners.
    assert two / 2 < four / 4


def test_empty_client_list():
    assert SharedCacheModel(4 * MB).solve([]) == []


@settings(deadline=None, max_examples=30)
@given(
    st.lists(st.floats(min_value=1e6, max_value=1e10), min_size=1, max_size=4),
)
def test_shares_never_exceed_capacity(rates):
    model = SharedCacheModel(4 * MB)
    curve = MissRatioCurve(0.9, 0.1, 1 * MB)
    clients = [CacheClient(f"c{i}", rate, curve) for i, rate in enumerate(rates)]
    shares = model.solve(clients)
    assert sum(s.capacity_bytes for s in shares) <= 4 * MB * 1.001
    assert all(0 <= s.miss_ratio <= 1 for s in shares)
