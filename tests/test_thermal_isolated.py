"""Isolated DIMM thermal model (Eqs. 3.3–3.5)."""

import pytest

from repro.params.thermal_params import AOHS_1_5, FDHS_1_0
from repro.thermal.isolated import DimmThermalModel, stable_temperatures


def test_stable_temperature_equations():
    # Direct Eq. 3.3/3.4 evaluation with AOHS_1.5 resistances.
    t = stable_temperatures(50.0, amb_power_w=6.0, dram_power_w=2.0, cooling=AOHS_1_5)
    assert t.amb_c == pytest.approx(50.0 + 6.0 * 9.3 + 2.0 * 3.4)
    assert t.dram_c == pytest.approx(50.0 + 6.0 * 4.1 + 2.0 * 4.0)


def test_zero_power_stable_is_ambient():
    t = stable_temperatures(45.0, 0.0, 0.0, FDHS_1_0)
    assert t.amb_c == pytest.approx(45.0)
    assert t.dram_c == pytest.approx(45.0)


def test_amb_runs_hotter_than_dram_under_amb_heavy_power():
    t = stable_temperatures(50.0, amb_power_w=6.0, dram_power_w=2.0, cooling=AOHS_1_5)
    assert t.amb_c > t.dram_c


def test_dynamic_approach_to_stable():
    model = DimmThermalModel(AOHS_1_5, initial_ambient_c=50.0)
    for _ in range(10000):
        model.step(50.0, 6.0, 2.0, 0.1)
    stable = stable_temperatures(50.0, 6.0, 2.0, AOHS_1_5)
    assert model.temperatures.amb_c == pytest.approx(stable.amb_c, abs=0.01)
    assert model.temperatures.dram_c == pytest.approx(stable.dram_c, abs=0.01)


def test_amb_heats_faster_than_dram():
    # tau_AMB = 50 s vs tau_DRAM = 100 s.
    model = DimmThermalModel(AOHS_1_5, initial_ambient_c=50.0)
    model.step(50.0, 5.0, 5.0, 25.0)
    temps = model.temperatures
    stable = stable_temperatures(50.0, 5.0, 5.0, AOHS_1_5)
    amb_progress = (temps.amb_c - 50.0) / (stable.amb_c - 50.0)
    dram_progress = (temps.dram_c - 50.0) / (stable.dram_c - 50.0)
    assert amb_progress > dram_progress


def test_cooling_when_power_drops():
    model = DimmThermalModel(AOHS_1_5, initial_ambient_c=50.0)
    for _ in range(100):
        model.step(50.0, 8.0, 3.0, 1.0)
    hot = model.temperatures.amb_c
    model.step(50.0, 0.0, 0.0, 10.0)
    assert model.temperatures.amb_c < hot


def test_reset_to_specific_temperatures():
    model = DimmThermalModel(AOHS_1_5, initial_ambient_c=50.0)
    model.reset_to(100.7, 78.0)
    assert model.temperatures.amb_c == pytest.approx(100.7)
    assert model.temperatures.dram_c == pytest.approx(78.0)


def test_ambient_rise_shifts_stable_linearly():
    low = stable_temperatures(40.0, 5.0, 2.0, FDHS_1_0)
    high = stable_temperatures(50.0, 5.0, 2.0, FDHS_1_0)
    assert high.amb_c - low.amb_c == pytest.approx(10.0)
    assert high.dram_c - low.dram_c == pytest.approx(10.0)


def test_fdhs_limits_dram_first_aohs_limits_amb_first():
    """The paper's Fig. 4.2 setup: under FDHS_1.0 the DRAM chips reach
    their (lower) limit before the AMB reaches its own; under AOHS_1.5
    the AMB is the binding constraint."""
    amb_power, dram_power = 6.5, 2.5
    fdhs = stable_temperatures(45.0, amb_power, dram_power, FDHS_1_0)
    aohs = stable_temperatures(50.0, amb_power, dram_power, AOHS_1_5)
    # Margins to the TDPs (AMB 110 / DRAM 85).
    assert (85.0 - fdhs.dram_c) < (110.0 - fdhs.amb_c)
    assert (110.0 - aohs.amb_c) < (85.0 - aohs.dram_c)
