"""Synthetic traffic generators."""

import pytest

from repro.dram.commands import RequestKind
from repro.dram.trafficgen import (
    bank_conflict_trace,
    poisson_trace,
    random_trace,
    stream_trace,
)
from repro.errors import ConfigurationError


def test_stream_addresses_sequential():
    trace = stream_trace(count=4, line_bytes=64)
    assert [r.address for r in trace] == [0, 64, 128, 192]


def test_stream_write_fraction():
    trace = stream_trace(count=1000, write_fraction=0.3, seed=1)
    writes = sum(1 for r in trace if r.kind is RequestKind.WRITE)
    assert 200 < writes < 400


def test_stream_zero_write_fraction():
    trace = stream_trace(count=100, write_fraction=0.0)
    assert all(r.kind is RequestKind.READ for r in trace)


def test_stream_interarrival():
    trace = stream_trace(count=3, interarrival_s=5e-9)
    assert [r.arrival_s for r in trace] == [0.0, 5e-9, 1e-8]


def test_random_trace_within_space():
    trace = random_trace(count=500, address_space_bytes=1 << 20, seed=2)
    assert all(0 <= r.address < (1 << 20) for r in trace)
    assert all(r.address % 64 == 0 for r in trace)


def test_random_trace_deterministic_by_seed():
    a = random_trace(count=50, address_space_bytes=1 << 20, seed=3)
    b = random_trace(count=50, address_space_bytes=1 << 20, seed=3)
    assert [r.address for r in a] == [r.address for r in b]


def test_poisson_mean_interarrival():
    trace = poisson_trace(
        count=5000, address_space_bytes=1 << 20, mean_interarrival_s=1e-7, seed=4
    )
    mean = trace[-1].arrival_s / len(trace)
    assert mean == pytest.approx(1e-7, rel=0.1)


def test_bank_conflict_trace_strides():
    trace = bank_conflict_trace(count=3, row_stride_bytes=1 << 21)
    assert [r.address for r in trace] == [0, 1 << 21, 1 << 22]


def test_generator_validation():
    with pytest.raises(ConfigurationError):
        stream_trace(count=-1)
    with pytest.raises(ConfigurationError):
        random_trace(count=1, address_space_bytes=32)
    with pytest.raises(ConfigurationError):
        poisson_trace(count=1, address_space_bytes=1 << 20, mean_interarrival_s=0.0)
