"""Memory request / command vocabulary."""

import pytest

from repro.dram.commands import DRAMCommand, MemoryRequest, RequestKind
from repro.errors import ConfigurationError


def test_request_ids_unique():
    a = MemoryRequest(RequestKind.READ, 0, 0.0)
    b = MemoryRequest(RequestKind.READ, 0, 0.0)
    assert a.request_id != b.request_id


def test_default_size_is_32_bytes():
    # A 64 B line striped over two physical channels (§3.3).
    assert MemoryRequest(RequestKind.READ, 0, 0.0).bytes == 32


def test_is_write_flag():
    assert MemoryRequest(RequestKind.WRITE, 0, 0.0).is_write
    assert not MemoryRequest(RequestKind.READ, 0, 0.0).is_write


def test_request_validation():
    with pytest.raises(ConfigurationError):
        MemoryRequest(RequestKind.READ, -1, 0.0)
    with pytest.raises(ConfigurationError):
        MemoryRequest(RequestKind.READ, 0, -1.0)
    with pytest.raises(ConfigurationError):
        MemoryRequest(RequestKind.READ, 0, 0.0, bytes=0)


def test_close_page_command_set():
    # Close page + auto precharge: RAS, CAS-AP and implicit PRE (§3.3).
    names = {command.value for command in DRAMCommand}
    assert {"ACT", "RDA", "WRA", "PRE", "REF"} == names
