"""The HTTP service mode: routes, errors, and CLI/HTTP byte-identity."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.analysis.specs import Chapter4Spec, run_result_from_dict
from repro.api import SCHEMA_VERSION, ReproClient, ReproService, ResultEnvelope
from repro.api import service as service_module
from repro.cli import main
from repro.cluster import WIRE_VERSION, cell_to_wire


@pytest.fixture(scope="module")
def service():
    """One threaded service over the default (suite-shared) store."""
    svc = ReproService(port=0)
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    yield svc
    svc.shutdown()
    svc.server_close()
    thread.join(timeout=5)


def _get(service: ReproService, path: str):
    with urllib.request.urlopen(service.url + path) as response:
        return response.status, json.loads(response.read())


def _post(service: ReproService, path: str, payload: dict):
    request = urllib.request.Request(
        service.url + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


def _error(service: ReproService, path: str, data: bytes | None = None):
    request = urllib.request.Request(service.url + path, data=data)
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request)
    return excinfo.value.code, json.loads(excinfo.value.read())


def test_scenarios_listing_route(service):
    status, document = _get(service, "/v1/scenarios")
    assert status == 200
    assert document["schema_version"] == SCHEMA_VERSION
    names = {d["name"] for d in document["scenarios"]}
    assert "hot-ambient" in names and "server-low-tdp" in names
    status, filtered = _get(service, "/v1/scenarios?kind=ch5")
    assert all(d["kind"] == "ch5" for d in filtered["scenarios"])
    assert len(filtered["scenarios"]) < len(document["scenarios"])


def test_simulate_route_get_and_post_agree(service):
    path = "/v1/simulate?mix=W1&policy=ts&copies=1"
    status, first = _get(service, path)
    assert status == 200
    envelope = ResultEnvelope.from_dict(first)
    assert envelope.metrics["policy"] == "DTM-TS"
    assert envelope.request == {
        "type": "simulate", "mix": "W1", "policy": "ts",
        "cooling": "AOHS_1.5", "ambient": "isolated", "copies": 1,
    }
    status, second = _post(
        service, "/v1/simulate", {"mix": "W1", "policy": "ts", "copies": 1}
    )
    assert second["provenance"]["cache"] == "hit"
    assert second["metrics"] == first["metrics"]


def test_server_route(service):
    status, raw = _get(service, "/v1/server?platform=PE1950&mix=W1&policy=bw&copies=1")
    assert status == 200
    envelope = ResultEnvelope.from_dict(raw)
    assert envelope.kind == "ch5"
    assert envelope.metrics["platform"] == "PE1950"


def test_campaign_route(service):
    status, document = _get(
        service, "/v1/campaign?grid=ch4&mixes=W1&policies=ts,bw&copies=1"
    )
    assert status == 200
    assert document["schema_version"] == SCHEMA_VERSION
    policies = [r["metrics"]["policy"] for r in document["results"]]
    assert policies == ["DTM-TS", "DTM-BW"]


def test_compare_route(service):
    status, document = _post(service, "/v1/compare", {"mix": "W1", "copies": 1})
    assert status == 200
    assert document["results"][0]["metrics"]["policy"] == "No-limit"
    assert len(document["results"]) == 8


def test_scenarios_run_route(service):
    status, document = _get(service, "/v1/scenarios/run?names=cold-aisle&copies=1")
    assert status == 200
    assert document["results"][0]["scenario"] == "cold-aisle"


def test_worker_health_route(service):
    status, document = _get(service, "/v1/worker/health")
    assert status == 200
    assert document["status"] == "ok"
    assert document["role"] == "api"  # `repro worker` reports "worker"
    assert document["wire_version"] == WIRE_VERSION
    assert {"ch4", "ch5"} <= set(document["kinds"])
    assert document["pid"] > 0


def test_worker_run_route_executes_wire_cells(service):
    spec = Chapter4Spec(mix="W1", policy="ts", copies=1)
    status, document = _post(
        service, "/v1/worker/run", {"cells": [cell_to_wire(spec)]}
    )
    assert status == 200
    assert document["schema_version"] == SCHEMA_VERSION
    (result,) = document["results"]
    assert result["key"] == spec.key()
    assert result["kind"] == "ch4"
    assert result["cache"] in ("hit", "miss")
    restored = run_result_from_dict(result["payload"])
    assert restored.runtime_s > 0
    # A repeat dispatch hits the worker's own cache.
    _, again = _post(
        service, "/v1/worker/run", {"cells": [cell_to_wire(spec)]}
    )
    assert again["results"][0]["cache"] == "hit"
    assert again["results"][0]["compute_seconds"] == 0.0


def test_worker_run_route_time_sliced_partial_then_resume(
    service, tmp_path, monkeypatch
):
    """A window_slice request returns a checkpoint for an unfinished
    cell; replaying the checkpoint finishes the cell with the same
    payload a whole-run dispatch produces."""
    from repro.campaign import GLOBAL_MEMORY, NullStore, run
    from repro.analysis.specs import run_result_to_dict

    # The cell must be cold or a cache hit short-circuits the slice:
    # private disk store (the service resolves the default stack per
    # request) and a cleared process memo.
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    GLOBAL_MEMORY.clear()
    spec = Chapter4Spec(mix="W1", policy="ts", copies=1, inlet_delta_c=-0.5)
    status, document = _post(
        service, "/v1/worker/run",
        {"cells": [cell_to_wire(spec)], "window_slice": 100},
    )
    assert status == 200
    (first,) = document["results"]
    assert first["key"] == spec.key()
    assert first["partial"] is True
    assert first["windows_done"] == 100
    assert first["resumed_from"] == 0
    state = first["state"]
    assert state["strategy"] == "ch4"
    assert state["windows"] == 100

    # Resume with a huge slice: the cell completes, warm.
    status, document = _post(
        service, "/v1/worker/run",
        {
            "cells": [cell_to_wire(spec)],
            "window_slice": 10_000_000,
            "resume": {spec.key(): state},
        },
    )
    assert status == 200
    (final,) = document["results"]
    assert "partial" not in final
    assert final["resumed_from"] == 100
    assert final["windows_done"] > 100
    expected = run(spec, store=NullStore())
    assert final["payload"] == run_result_to_dict(expected)


def test_progress_route_reports_engine_runs(service, tmp_path, monkeypatch):
    from repro.campaign import GLOBAL_MEMORY
    from repro.engine import PROGRESS

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    GLOBAL_MEMORY.clear()
    PROGRESS.clear()
    spec = Chapter4Spec(mix="W1", policy="ts", copies=1, inlet_delta_c=-1.0)
    # Cold-run the cell through the worker route so the service's own
    # process hosts the engine (progress is process-local).
    _post(
        service, "/v1/worker/run",
        {"cells": [cell_to_wire(spec)], "window_slice": 10_000_000},
    )
    status, document = _get(service, "/v1/progress")
    assert status == 200
    runs = document["runs"]
    assert spec.key() in runs
    record = runs[spec.key()]
    assert record["done"] is True and record["windows"] > 0
    status, filtered = _get(service, f"/v1/progress?key={spec.key()}")
    assert status == 200 and set(filtered["runs"]) == {spec.key()}
    status, empty = _get(service, "/v1/progress?key=nope")
    assert status == 200 and empty["runs"] == {}
    code, body = _error(service, "/v1/progress?bogus=1")
    assert code == 400 and "unknown progress parameters" in body["error"]
    code, body = _error(service, "/v1/progress", data=b"{}")
    assert code == 405


def test_worker_route_errors(service):
    code, body = _error(service, "/v1/worker/run", data=b"{}")
    assert code == 400 and "non-empty 'cells'" in body["error"]
    code, body = _error(
        service, "/v1/worker/run", data=b'{"cells": [], "x": 1}'
    )
    assert code == 400 and "non-empty 'cells'" in body["error"]
    code, body = _error(
        service, "/v1/worker/run",
        data=json.dumps({"cells": [1], "extra": True}).encode(),
    )
    assert code == 400 and "unknown worker run fields" in body["error"]
    code, body = _error(
        service, "/v1/worker/run",
        data=json.dumps({"cells": [{"kind": "nope", "fields": {}}]}).encode(),
    )
    assert code == 400 and "no spec type" in body["error"]
    code, body = _error(service, "/v1/worker/run")
    assert code == 405 and "use POST" in body["error"]
    code, body = _error(service, "/v1/worker/health", data=b"{}")
    assert code == 405 and "use GET" in body["error"]


def test_jobs_rejected_over_http(service):
    code, body = _error(service, "/v1/campaign?grid=ch4&mixes=W1&policies=ts&copies=1&jobs=4")
    assert code == 400 and "jobs is not supported over HTTP" in body["error"]


def test_error_responses(service):
    code, body = _error(service, "/nope")
    assert code == 404 and "unknown route" in body["error"]
    code, body = _error(service, "/v1/simulate?policy=warp")
    assert code == 400 and "unknown ch4 policy" in body["error"]
    code, body = _error(service, "/v1/simulate?copies=two")
    assert code == 400 and "must be an integer" in body["error"]
    code, body = _error(service, "/v1/scenarios?flavor=spicy")
    assert code == 400 and "unknown scenario-listing parameters" in body["error"]
    code, body = _error(service, "/v1/scenarios?kind=ch6")
    assert code == 400 and "kind must be" in body["error"]
    code, body = _error(service, "/v1/simulate", data=b"{not json")
    assert code == 400 and "not valid JSON" in body["error"]
    code, body = _error(service, "/v1/simulate", data=b"[1, 2]")
    assert code == 400 and "JSON object" in body["error"]
    code, body = _error(service, "/v1/scenarios", data=b"{}")
    assert code == 405 and "use GET" in body["error"]
    code, body = _error(service, "/nope", data=b"{}")
    assert code == 404
    # Every error body is itself versioned.
    assert body["schema_version"] == SCHEMA_VERSION


def test_cli_json_and_http_are_byte_identical(service, capsys):
    """The acceptance check: warm cell, CLI --json == curl body."""
    args = ["simulate", "--mix", "W1", "--policy", "acg", "--copies", "1",
            "--json"]
    assert main(args) == 0  # warm the shared cache
    capsys.readouterr()
    assert main(args) == 0
    cli_text = capsys.readouterr().out
    with urllib.request.urlopen(
        service.url + "/v1/simulate?mix=W1&policy=acg&copies=1"
    ) as response:
        http_text = response.read().decode()
    assert cli_text == http_text
    envelope = ResultEnvelope.from_dict(json.loads(http_text))
    assert envelope.provenance.cache == "hit"
    assert envelope.provenance.compute_seconds == 0.0


def test_verbose_logging_path(capsys):
    svc = ReproService(port=0, client=ReproClient(), verbose=True)
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    try:
        _get(svc, "/v1/scenarios")
    finally:
        svc.shutdown()
        svc.server_close()
        thread.join(timeout=5)


def test_serve_writes_port_file_and_stops(tmp_path, monkeypatch, capsys):
    """serve() announces, writes the port file, and exits cleanly."""
    monkeypatch.setattr(
        ReproService, "serve_forever",
        lambda self, *a, **k: (_ for _ in ()).throw(KeyboardInterrupt()),
    )
    port_file = tmp_path / "port"
    code = service_module.serve(port=0, port_file=str(port_file))
    assert code == 0
    assert int(port_file.read_text()) > 0
    assert "serving repro API" in capsys.readouterr().out


def test_cli_serve_subcommand(tmp_path, monkeypatch, capsys):
    monkeypatch.setattr(
        ReproService, "serve_forever",
        lambda self, *a, **k: (_ for _ in ()).throw(KeyboardInterrupt()),
    )
    port_file = tmp_path / "port"
    assert main(["serve", "--port", "0", "--port-file", str(port_file)]) == 0
    assert port_file.exists()
    assert "serving repro API" in capsys.readouterr().out


def test_cli_worker_subcommand(tmp_path, monkeypatch, capsys):
    monkeypatch.setattr(
        ReproService, "serve_forever",
        lambda self, *a, **k: (_ for _ in ()).throw(KeyboardInterrupt()),
    )
    port_file = tmp_path / "port"
    assert main(["worker", "--port", "0", "--port-file", str(port_file)]) == 0
    assert int(port_file.read_text()) > 0
    assert "serving repro worker" in capsys.readouterr().out
