"""Thermal constants (Tables 3.2 and 3.3)."""

import pytest

from repro.errors import ConfigurationError
from repro.params.thermal_params import (
    AOHS_1_0,
    AOHS_1_5,
    AOHS_3_0,
    COOLING_CONFIGS,
    FDHS_1_0,
    FDHS_1_5,
    FDHS_3_0,
    INTEGRATED_AMBIENT,
    ISOLATED_AMBIENT,
    AmbientModelParams,
    CoolingConfig,
    ThermalResistances,
)


def test_table_3_2_bold_columns():
    # The two configurations the paper's experiments use.
    r = AOHS_1_5.resistances
    assert (r.psi_amb, r.psi_dram_amb, r.psi_dram, r.psi_amb_dram) == (9.3, 3.4, 4.0, 4.1)
    r = FDHS_1_0.resistances
    assert (r.psi_amb, r.psi_dram_amb, r.psi_dram, r.psi_amb_dram) == (8.0, 4.4, 4.0, 5.7)


def test_table_3_2_other_columns():
    assert AOHS_1_0.resistances.psi_amb == 11.2
    assert AOHS_3_0.resistances.psi_amb == 6.6
    assert FDHS_1_5.resistances.psi_amb == 7.0
    assert FDHS_3_0.resistances.psi_amb == 5.5


def test_time_constants():
    assert AOHS_1_5.tau_amb_s == 50.0
    assert AOHS_1_5.tau_dram_s == 100.0


def test_faster_air_cools_better():
    # Within a spreader type, higher velocity means lower resistance.
    assert AOHS_1_0.resistances.psi_amb > AOHS_1_5.resistances.psi_amb > AOHS_3_0.resistances.psi_amb
    assert FDHS_1_0.resistances.psi_amb > FDHS_1_5.resistances.psi_amb > FDHS_3_0.resistances.psi_amb


def test_fdhs_spreads_amb_heat_better_than_aohs():
    # The full-DIMM spreader gives the AMB a lower resistance to ambient
    # at matched velocity (Table 3.2).
    assert FDHS_1_0.resistances.psi_amb < AOHS_1_0.resistances.psi_amb
    assert FDHS_3_0.resistances.psi_amb < AOHS_3_0.resistances.psi_amb


def test_registry_has_all_six():
    assert len(COOLING_CONFIGS) == 6
    assert "AOHS_1.5" in COOLING_CONFIGS
    assert "FDHS_1.0" in COOLING_CONFIGS


def test_table_3_3_isolated():
    assert ISOLATED_AMBIENT.interaction == 0.0
    assert ISOLATED_AMBIENT.inlet_for("FDHS_1.0") == 45.0
    assert ISOLATED_AMBIENT.inlet_for("AOHS_1.5") == 50.0


def test_table_3_3_integrated():
    assert INTEGRATED_AMBIENT.interaction == 1.5
    assert INTEGRATED_AMBIENT.inlet_for("FDHS_1.0") == 40.0
    assert INTEGRATED_AMBIENT.inlet_for("AOHS_1.5") == 45.0
    assert INTEGRATED_AMBIENT.tau_ambient_s == 20.0


def test_with_interaction_copy():
    stronger = INTEGRATED_AMBIENT.with_interaction(2.0)
    assert stronger.interaction == 2.0
    assert INTEGRATED_AMBIENT.interaction == 1.5  # original unchanged
    assert stronger.inlet_for("FDHS_1.0") == 40.0


def test_unknown_cooling_inlet_raises():
    with pytest.raises(ConfigurationError):
        ISOLATED_AMBIENT.inlet_for("WATERBLOCK_9000")


def test_resistances_must_be_positive():
    with pytest.raises(ConfigurationError):
        ThermalResistances(psi_amb=0.0, psi_dram_amb=1.0, psi_dram=1.0, psi_amb_dram=1.0)


def test_cooling_config_validation():
    with pytest.raises(ConfigurationError):
        CoolingConfig(
            name="bad",
            heat_spreader="NONE",
            air_velocity_m_per_s=1.0,
            resistances=AOHS_1_5.resistances,
        )
    with pytest.raises(ConfigurationError):
        AmbientModelParams(inlet_by_cooling={}, interaction=-1.0)
